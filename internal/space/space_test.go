package space

import (
	"fmt"
	"math/rand"
	"reflect"
	"sort"
	"testing"
	"testing/quick"
)

// fixture builds the Figure-1-like building used across tests: 8 rooms,
// 3 APs with overlapping coverage.
func fixture(t *testing.T) *Building {
	t.Helper()
	b, err := NewBuilding(Config{
		Name: "test",
		Rooms: []Room{
			{ID: "2059", Kind: Private},
			{ID: "2061", Kind: Private},
			{ID: "2065", Kind: Public},
			{ID: "2069", Kind: Private},
			{ID: "2099", Kind: Private},
			{ID: "2004", Kind: Public},
			{ID: "2057", Kind: Private},
			{ID: "2068", Kind: Private},
		},
		AccessPoints: []AccessPoint{
			{ID: "wap2", Coverage: []RoomID{"2004", "2057", "2059", "2061", "2068"}},
			{ID: "wap3", Coverage: []RoomID{"2059", "2061", "2065", "2069", "2099"}},
			{ID: "wap4", Coverage: []RoomID{"2099", "2068"}},
		},
		PreferredRooms: map[string][]RoomID{
			"7fbh": {"2061"},
		},
	})
	if err != nil {
		t.Fatalf("NewBuilding: %v", err)
	}
	return b
}

func TestNewBuildingValidation(t *testing.T) {
	cases := []struct {
		name string
		cfg  Config
	}{
		{"no rooms", Config{AccessPoints: []AccessPoint{{ID: "a", Coverage: []RoomID{"r"}}}}},
		{"no aps", Config{Rooms: []Room{{ID: "r"}}}},
		{"empty room id", Config{
			Rooms:        []Room{{ID: ""}},
			AccessPoints: []AccessPoint{{ID: "a", Coverage: []RoomID{"r"}}},
		}},
		{"duplicate room", Config{
			Rooms:        []Room{{ID: "r"}, {ID: "r"}},
			AccessPoints: []AccessPoint{{ID: "a", Coverage: []RoomID{"r"}}},
		}},
		{"empty ap id", Config{
			Rooms:        []Room{{ID: "r"}},
			AccessPoints: []AccessPoint{{ID: "", Coverage: []RoomID{"r"}}},
		}},
		{"duplicate ap", Config{
			Rooms: []Room{{ID: "r"}},
			AccessPoints: []AccessPoint{
				{ID: "a", Coverage: []RoomID{"r"}},
				{ID: "a", Coverage: []RoomID{"r"}},
			},
		}},
		{"ap covers nothing", Config{
			Rooms:        []Room{{ID: "r"}},
			AccessPoints: []AccessPoint{{ID: "a"}},
		}},
		{"ap covers unknown room", Config{
			Rooms:        []Room{{ID: "r"}},
			AccessPoints: []AccessPoint{{ID: "a", Coverage: []RoomID{"zz"}}},
		}},
		{"preferred unknown room", Config{
			Rooms:          []Room{{ID: "r"}},
			AccessPoints:   []AccessPoint{{ID: "a", Coverage: []RoomID{"r"}}},
			PreferredRooms: map[string][]RoomID{"d": {"zz"}},
		}},
		{"preferred empty device", Config{
			Rooms:          []Room{{ID: "r"}},
			AccessPoints:   []AccessPoint{{ID: "a", Coverage: []RoomID{"r"}}},
			PreferredRooms: map[string][]RoomID{"": {"r"}},
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := NewBuilding(tc.cfg); err == nil {
				t.Fatalf("expected error for %s", tc.name)
			}
		})
	}
}

func TestBuildingAccessors(t *testing.T) {
	b := fixture(t)
	if got := b.Name(); got != "test" {
		t.Errorf("Name = %q", got)
	}
	if got := b.NumRooms(); got != 8 {
		t.Errorf("NumRooms = %d, want 8", got)
	}
	if got := b.NumAccessPoints(); got != 3 {
		t.Errorf("NumAccessPoints = %d, want 3", got)
	}
	if got := len(b.Regions()); got != 3 {
		t.Errorf("len(Regions) = %d, want 3", got)
	}
	if !sort.SliceIsSorted(b.Rooms(), func(i, j int) bool { return b.Rooms()[i] < b.Rooms()[j] }) {
		t.Error("Rooms() not sorted")
	}
	room, ok := b.Room("2065")
	if !ok || room.Kind != Public {
		t.Errorf("Room(2065) = %+v, %v", room, ok)
	}
	if _, ok := b.Room("nope"); ok {
		t.Error("Room(nope) should not exist")
	}
}

func TestRegionAPBijection(t *testing.T) {
	b := fixture(t)
	for _, ap := range b.AccessPoints() {
		g, ok := b.RegionOf(ap)
		if !ok {
			t.Fatalf("RegionOf(%s) missing", ap)
		}
		back, ok := b.APOf(g)
		if !ok || back != ap {
			t.Errorf("APOf(RegionOf(%s)) = %s, want %s", ap, back, ap)
		}
	}
	if _, ok := b.RegionOf("unknown"); ok {
		t.Error("RegionOf(unknown) should fail")
	}
	if _, ok := b.APOf("unknown"); ok {
		t.Error("APOf(unknown) should fail")
	}
}

func TestCandidateRooms(t *testing.T) {
	b := fixture(t)
	g, _ := b.RegionOf("wap3")
	got := b.CandidateRooms(g)
	want := []RoomID{"2059", "2061", "2065", "2069", "2099"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("CandidateRooms(wap3) = %v, want %v", got, want)
	}
	if b.CandidateRooms("unknown") != nil {
		t.Error("CandidateRooms(unknown) should be nil")
	}
}

func TestRegionsOfRoomOverlap(t *testing.T) {
	b := fixture(t)
	// 2059 and 2061 are covered by wap2 and wap3 (overlapping regions).
	for _, r := range []RoomID{"2059", "2061"} {
		regs := b.RegionsOfRoom(r)
		if len(regs) != 2 {
			t.Errorf("RegionsOfRoom(%s) = %v, want 2 regions", r, regs)
		}
	}
	// 2065 only in wap3.
	if regs := b.RegionsOfRoom("2065"); len(regs) != 1 {
		t.Errorf("RegionsOfRoom(2065) = %v, want 1 region", regs)
	}
}

func TestIntersectCandidates(t *testing.T) {
	b := fixture(t)
	g2, _ := b.RegionOf("wap2")
	g3, _ := b.RegionOf("wap3")
	g4, _ := b.RegionOf("wap4")

	got := b.IntersectCandidates([]RegionID{g2, g3})
	want := []RoomID{"2059", "2061"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("Intersect(g2,g3) = %v, want %v", got, want)
	}
	got = b.IntersectCandidates([]RegionID{g3, g4})
	want = []RoomID{"2099"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("Intersect(g3,g4) = %v, want %v", got, want)
	}
	if got := b.IntersectCandidates(nil); got != nil {
		t.Errorf("Intersect(nil) = %v, want nil", got)
	}
	// Single region: the intersection is its own candidate set.
	got = b.IntersectCandidates([]RegionID{g4})
	want = []RoomID{"2068", "2099"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("Intersect(g4) = %v, want %v", got, want)
	}
}

func TestOverlappingRegions(t *testing.T) {
	b := fixture(t)
	g2, _ := b.RegionOf("wap2")
	g3, _ := b.RegionOf("wap3")
	g4, _ := b.RegionOf("wap4")
	if !b.OverlappingRegions(g2, g3) {
		t.Error("g2 and g3 should overlap (2059, 2061)")
	}
	if !b.OverlappingRegions(g2, g4) {
		t.Error("g2 and g4 should overlap (2068)")
	}
	if !b.OverlappingRegions(g3, g3) {
		t.Error("a region overlaps itself")
	}
}

func TestOverlappingAPs(t *testing.T) {
	b := fixture(t)
	// In the fixture every AP's coverage touches every other's, so each
	// region's neighborhood is all three APs, sorted, self included.
	for _, ap := range []APID{"wap2", "wap3", "wap4"} {
		g, _ := b.RegionOf(ap)
		got := b.OverlappingAPs(g)
		if !reflect.DeepEqual(got, []APID{"wap2", "wap3", "wap4"}) {
			t.Errorf("OverlappingAPs(%s) = %v", g, got)
		}
	}
	if got := b.OverlappingAPs("ghost"); got != nil {
		t.Errorf("OverlappingAPs(ghost) = %v, want nil", got)
	}

	// Disjoint coverages stay out of each other's neighborhoods.
	iso, err := NewBuilding(Config{
		Rooms: []Room{{ID: "a"}, {ID: "b"}, {ID: "c"}},
		AccessPoints: []AccessPoint{
			{ID: "apA", Coverage: []RoomID{"a", "b"}},
			{ID: "apC", Coverage: []RoomID{"c"}},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	gA, _ := iso.RegionOf("apA")
	gC, _ := iso.RegionOf("apC")
	if got := iso.OverlappingAPs(gA); !reflect.DeepEqual(got, []APID{"apA"}) {
		t.Errorf("OverlappingAPs(%s) = %v, want [apA]", gA, got)
	}
	if got := iso.OverlappingAPs(gC); !reflect.DeepEqual(got, []APID{"apC"}) {
		t.Errorf("OverlappingAPs(%s) = %v, want [apC]", gC, got)
	}
}

func TestPreferredRooms(t *testing.T) {
	b := fixture(t)
	if got := b.PreferredRooms("7fbh"); !reflect.DeepEqual(got, []RoomID{"2061"}) {
		t.Errorf("PreferredRooms(7fbh) = %v", got)
	}
	if got := b.PreferredRooms("unknown"); got != nil {
		t.Errorf("PreferredRooms(unknown) = %v, want nil", got)
	}
	if err := b.SetPreferredRooms("newdev", []RoomID{"2065", "2059", "2065"}); err != nil {
		t.Fatalf("SetPreferredRooms: %v", err)
	}
	if got := b.PreferredRooms("newdev"); !reflect.DeepEqual(got, []RoomID{"2059", "2065"}) {
		t.Errorf("PreferredRooms(newdev) = %v, want deduped sorted", got)
	}
	if err := b.SetPreferredRooms("newdev", []RoomID{"bogus"}); err == nil {
		t.Error("SetPreferredRooms with unknown room should fail")
	}
	if err := b.SetPreferredRooms("", []RoomID{"2059"}); err == nil {
		t.Error("SetPreferredRooms with empty device should fail")
	}
}

func TestRoomKinds(t *testing.T) {
	b := fixture(t)
	if !b.IsPublic("2065") || b.IsPrivate("2065") {
		t.Error("2065 should be public")
	}
	if !b.IsPrivate("2061") || b.IsPublic("2061") {
		t.Error("2061 should be private")
	}
	if b.IsPublic("nope") || b.IsPrivate("nope") {
		t.Error("unknown room is neither public nor private")
	}
	if Public.String() != "public" || Private.String() != "private" {
		t.Errorf("RoomKind strings: %s/%s", Public, Private)
	}
	if RoomKind(99).String() == "" {
		t.Error("unknown kind should still render")
	}
}

func TestCoverageDeduplicated(t *testing.T) {
	b, err := NewBuilding(Config{
		Rooms: []Room{{ID: "a"}, {ID: "b"}},
		AccessPoints: []AccessPoint{
			{ID: "ap", Coverage: []RoomID{"b", "a", "b", "a"}},
		},
	})
	if err != nil {
		t.Fatalf("NewBuilding: %v", err)
	}
	if got := b.Coverage("ap"); !reflect.DeepEqual(got, []RoomID{"a", "b"}) {
		t.Errorf("Coverage = %v, want deduped sorted [a b]", got)
	}
}

// randomBuilding builds a random valid building for property tests.
func randomBuilding(rng *rand.Rand) *Building {
	numRooms := 2 + rng.Intn(30)
	rooms := make([]Room, numRooms)
	ids := make([]RoomID, numRooms)
	for i := range rooms {
		ids[i] = RoomID(fmt.Sprintf("r%03d", i))
		kind := Private
		if rng.Intn(3) == 0 {
			kind = Public
		}
		rooms[i] = Room{ID: ids[i], Kind: kind}
	}
	numAPs := 1 + rng.Intn(6)
	aps := make([]AccessPoint, numAPs)
	for a := range aps {
		n := 1 + rng.Intn(numRooms)
		cov := make([]RoomID, 0, n)
		for j := 0; j < n; j++ {
			cov = append(cov, ids[rng.Intn(numRooms)])
		}
		aps[a] = AccessPoint{ID: APID(fmt.Sprintf("ap%02d", a)), Coverage: cov}
	}
	b, err := NewBuilding(Config{Name: "rand", Rooms: rooms, AccessPoints: aps})
	if err != nil {
		panic(err)
	}
	return b
}

// Property: IntersectCandidates(gs) equals the naive set intersection of
// the candidate sets.
func TestIntersectCandidatesProperty(t *testing.T) {
	f := func(seed int64, pick []bool) bool {
		rng := rand.New(rand.NewSource(seed))
		b := randomBuilding(rng)
		regions := b.Regions()
		var chosen []RegionID
		for i, p := range pick {
			if p && i < len(regions) {
				chosen = append(chosen, regions[i])
			}
		}
		if len(chosen) == 0 {
			return true
		}
		counts := map[RoomID]int{}
		for _, g := range chosen {
			seen := map[RoomID]bool{}
			for _, r := range b.CandidateRooms(g) {
				if !seen[r] {
					seen[r] = true
					counts[r]++
				}
			}
		}
		var want []RoomID
		for r, c := range counts {
			if c == len(chosen) {
				want = append(want, r)
			}
		}
		sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
		got := b.IntersectCandidates(chosen)
		if len(got) == 0 && len(want) == 0 {
			return true
		}
		return reflect.DeepEqual(got, want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: OverlappingRegions(a,b) iff IntersectCandidates({a,b}) nonempty.
func TestOverlapConsistencyProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		b := randomBuilding(rng)
		regions := b.Regions()
		for _, ga := range regions {
			for _, gb := range regions {
				overlap := b.OverlappingRegions(ga, gb)
				inter := b.IntersectCandidates([]RegionID{ga, gb})
				if overlap != (len(inter) > 0) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
