// Package space implements LOCATER's space model: a building partitioned at
// three granularity levels (building, region, room), the WiFi access points
// whose coverage areas define the regions, and the room metadata (public vs.
// private rooms, per-device preferred rooms) that the fine-grained
// localization algorithm consumes.
//
// The model follows Section 2 of the paper:
//
//   - Building granularity distinguishes only inside (b_in) from outside
//     (b_out).
//   - A region g_j is the area covered by exactly one WiFi access point
//     wap_j; regions may overlap (a room can belong to several regions).
//   - A room is the finest localization unit and is classified as public
//     (shared facilities such as meeting rooms or lounges) or private
//     (rooms owned by specific users, such as personal offices).
package space

import (
	"fmt"
	"sort"
	"sync"
)

// RoomKind classifies a room as public or private (paper Section 2).
type RoomKind int

const (
	// Public rooms are shared facilities accessible to multiple users:
	// meeting rooms, lounges, kitchens, food courts.
	Public RoomKind = iota
	// Private rooms are restricted to or owned by certain users, such as a
	// person's office.
	Private
)

// String returns the lowercase name of the room kind.
func (k RoomKind) String() string {
	switch k {
	case Public:
		return "public"
	case Private:
		return "private"
	default:
		return fmt.Sprintf("RoomKind(%d)", int(k))
	}
}

// RoomID identifies a room within a building (e.g. "2061").
type RoomID string

// RegionID identifies a region, i.e. the coverage area of one access point.
type RegionID string

// APID identifies a WiFi access point.
type APID string

// Room is the finest localization unit.
type Room struct {
	ID   RoomID
	Kind RoomKind
	// Owner optionally names the device/person that owns a private room.
	// It is metadata only; the algorithms use PreferredRooms instead.
	Owner string
}

// AccessPoint is a WiFi access point together with the set of rooms its
// signal covers. The coverage set defines the region associated with the AP.
type AccessPoint struct {
	ID APID
	// Coverage lists the rooms reachable from this AP. Order is not
	// significant; Building normalizes it.
	Coverage []RoomID
}

// Building is the space metadata LOCATER operates on. Construct it with
// NewBuilding, which validates and indexes the rooms and access points. The
// structural metadata (rooms, APs, coverage) is immutable after
// construction; the per-device preferred-room registrations may be updated
// at run time and are internally synchronized, so a Building is safe for
// concurrent use.
type Building struct {
	name string

	rooms   map[RoomID]Room
	roomIDs []RoomID // sorted, for deterministic iteration

	aps   map[APID]*AccessPoint
	apIDs []APID // sorted

	// regionOf maps an AP to its region ID (1:1 per the paper).
	regionOf map[APID]RegionID
	apOf     map[RegionID]APID

	// coverage[ap] = sorted room IDs covered by ap.
	coverage map[APID][]RoomID
	// regionsOfRoom[room] = sorted region IDs whose AP covers the room.
	regionsOfRoom map[RoomID][]RegionID
	// overlapAPs[g] = sorted APs whose region shares at least one room with
	// g (including g's own AP): the neighborhood fine-grained neighbor
	// discovery scans.
	overlapAPs map[RegionID][]APID

	// prefMu guards the two preference maps below — the only Building
	// state that may change at run time (paper Appendix 9.1: preferred
	// rooms "can be included at run time"). Every other field is immutable
	// after NewBuilding, so queries read it without locking.
	prefMu sync.RWMutex
	// preferred[device] = sorted preferred rooms R^pf(d) for a device.
	preferred map[string][]RoomID
	// timePreferred[device] = time-of-day-scoped preference windows that
	// override the static preferred rooms (see TimePreference).
	timePreferred map[string][]TimePreference
}

// Config collects the inputs for NewBuilding.
type Config struct {
	// Name labels the building (informational).
	Name string
	// Rooms lists every room in the building.
	Rooms []Room
	// AccessPoints lists every AP and its room coverage.
	AccessPoints []AccessPoint
	// PreferredRooms maps a device identifier (MAC address) to the rooms
	// preferred by the device's owner, e.g. their office. May be nil.
	PreferredRooms map[string][]RoomID
}

// NewBuilding validates cfg and builds the indexed space model.
//
// Validation rules:
//   - at least one room and one access point;
//   - room and AP identifiers must be unique and non-empty;
//   - every coverage and preferred-room entry must reference a known room;
//   - every AP must cover at least one room.
func NewBuilding(cfg Config) (*Building, error) {
	if len(cfg.Rooms) == 0 {
		return nil, fmt.Errorf("space: building %q has no rooms", cfg.Name)
	}
	if len(cfg.AccessPoints) == 0 {
		return nil, fmt.Errorf("space: building %q has no access points", cfg.Name)
	}
	b := &Building{
		name:          cfg.Name,
		rooms:         make(map[RoomID]Room, len(cfg.Rooms)),
		aps:           make(map[APID]*AccessPoint, len(cfg.AccessPoints)),
		regionOf:      make(map[APID]RegionID, len(cfg.AccessPoints)),
		apOf:          make(map[RegionID]APID, len(cfg.AccessPoints)),
		coverage:      make(map[APID][]RoomID, len(cfg.AccessPoints)),
		regionsOfRoom: make(map[RoomID][]RegionID),
		preferred:     make(map[string][]RoomID),
	}
	for _, r := range cfg.Rooms {
		if r.ID == "" {
			return nil, fmt.Errorf("space: room with empty ID")
		}
		if _, dup := b.rooms[r.ID]; dup {
			return nil, fmt.Errorf("space: duplicate room %q", r.ID)
		}
		b.rooms[r.ID] = r
		b.roomIDs = append(b.roomIDs, r.ID)
	}
	sort.Slice(b.roomIDs, func(i, j int) bool { return b.roomIDs[i] < b.roomIDs[j] })

	for i := range cfg.AccessPoints {
		ap := cfg.AccessPoints[i]
		if ap.ID == "" {
			return nil, fmt.Errorf("space: access point with empty ID")
		}
		if _, dup := b.aps[ap.ID]; dup {
			return nil, fmt.Errorf("space: duplicate access point %q", ap.ID)
		}
		if len(ap.Coverage) == 0 {
			return nil, fmt.Errorf("space: access point %q covers no rooms", ap.ID)
		}
		cov := make([]RoomID, 0, len(ap.Coverage))
		seen := make(map[RoomID]bool, len(ap.Coverage))
		for _, rid := range ap.Coverage {
			if _, ok := b.rooms[rid]; !ok {
				return nil, fmt.Errorf("space: access point %q covers unknown room %q", ap.ID, rid)
			}
			if !seen[rid] {
				seen[rid] = true
				cov = append(cov, rid)
			}
		}
		sort.Slice(cov, func(i, j int) bool { return cov[i] < cov[j] })
		apCopy := AccessPoint{ID: ap.ID, Coverage: cov}
		b.aps[ap.ID] = &apCopy
		b.apIDs = append(b.apIDs, ap.ID)
		region := RegionID(ap.ID)
		b.regionOf[ap.ID] = region
		b.apOf[region] = ap.ID
		b.coverage[ap.ID] = cov
		for _, rid := range cov {
			b.regionsOfRoom[rid] = append(b.regionsOfRoom[rid], region)
		}
	}
	sort.Slice(b.apIDs, func(i, j int) bool { return b.apIDs[i] < b.apIDs[j] })
	for rid := range b.regionsOfRoom {
		rs := b.regionsOfRoom[rid]
		sort.Slice(rs, func(i, j int) bool { return rs[i] < rs[j] })
	}

	// Precompute each region's overlap neighborhood: the APs whose coverage
	// shares a room with the region's, via the regionsOfRoom inverted map
	// (near-linear in total coverage, not pairwise region intersections).
	// Built once over the immutable structural metadata (rooms can belong
	// to several regions), read lock-free at query time.
	b.overlapAPs = make(map[RegionID][]APID, len(b.apIDs))
	for _, apx := range b.apIDs {
		gx := b.regionOf[apx]
		seen := make(map[APID]bool)
		var over []APID
		for _, rid := range b.coverage[apx] {
			for _, gy := range b.regionsOfRoom[rid] {
				apy := b.apOf[gy]
				if !seen[apy] {
					seen[apy] = true
					over = append(over, apy)
				}
			}
		}
		sort.Slice(over, func(i, j int) bool { return over[i] < over[j] })
		b.overlapAPs[gx] = over
	}

	for dev, rooms := range cfg.PreferredRooms {
		if dev == "" {
			return nil, fmt.Errorf("space: preferred rooms for empty device ID")
		}
		var prefs []RoomID
		seen := make(map[RoomID]bool, len(rooms))
		for _, rid := range rooms {
			if _, ok := b.rooms[rid]; !ok {
				return nil, fmt.Errorf("space: device %q prefers unknown room %q", dev, rid)
			}
			if !seen[rid] {
				seen[rid] = true
				prefs = append(prefs, rid)
			}
		}
		sort.Slice(prefs, func(i, j int) bool { return prefs[i] < prefs[j] })
		b.preferred[dev] = prefs
	}
	return b, nil
}

// Name returns the building's label.
func (b *Building) Name() string { return b.name }

// NumRooms returns the number of rooms in the building.
func (b *Building) NumRooms() int { return len(b.rooms) }

// NumAccessPoints returns the number of access points (== number of regions).
func (b *Building) NumAccessPoints() int { return len(b.aps) }

// Rooms returns all room IDs in sorted order. The slice is shared; callers
// must not modify it.
func (b *Building) Rooms() []RoomID { return b.roomIDs }

// Room looks up a room by ID.
func (b *Building) Room(id RoomID) (Room, bool) {
	r, ok := b.rooms[id]
	return r, ok
}

// AccessPoints returns all AP IDs in sorted order. The slice is shared;
// callers must not modify it.
func (b *Building) AccessPoints() []APID { return b.apIDs }

// Regions returns all region IDs (one per AP) in AP order.
func (b *Building) Regions() []RegionID {
	out := make([]RegionID, len(b.apIDs))
	for i, ap := range b.apIDs {
		out[i] = b.regionOf[ap]
	}
	return out
}

// RegionOf returns the region associated with an access point. Regions and
// APs are in 1:1 correspondence (paper Section 2), so the mapping is total
// for known APs.
func (b *Building) RegionOf(ap APID) (RegionID, bool) {
	g, ok := b.regionOf[ap]
	return g, ok
}

// APOf returns the access point whose coverage defines region g.
func (b *Building) APOf(g RegionID) (APID, bool) {
	ap, ok := b.apOf[g]
	return ap, ok
}

// CandidateRooms returns R(g): the sorted rooms covered by region g's AP.
// The slice is shared; callers must not modify it.
func (b *Building) CandidateRooms(g RegionID) []RoomID {
	ap, ok := b.apOf[g]
	if !ok {
		return nil
	}
	return b.coverage[ap]
}

// Coverage returns the sorted rooms covered by an AP. The slice is shared;
// callers must not modify it.
func (b *Building) Coverage(ap APID) []RoomID { return b.coverage[ap] }

// RegionsOfRoom returns the sorted regions whose AP covers the room. A room
// that lies in overlapping coverage areas belongs to several regions.
func (b *Building) RegionsOfRoom(r RoomID) []RegionID { return b.regionsOfRoom[r] }

// PreferredRooms returns R^pf(device): the sorted preferred rooms registered
// for the device, or nil when the owner has none. The slice is shared;
// callers must not modify it.
func (b *Building) PreferredRooms(device string) []RoomID {
	b.prefMu.RLock()
	defer b.prefMu.RUnlock()
	return b.preferred[device]
}

// SetPreferredRooms registers (or replaces) the preferred rooms for a device
// at run time. The paper notes this metadata "is not a must for LOCATER and
// can be included at run time" (Appendix 9.1). Unknown rooms are rejected.
func (b *Building) SetPreferredRooms(device string, rooms []RoomID) error {
	if device == "" {
		return fmt.Errorf("space: empty device ID")
	}
	var prefs []RoomID
	seen := make(map[RoomID]bool, len(rooms))
	for _, rid := range rooms {
		if _, ok := b.rooms[rid]; !ok {
			return fmt.Errorf("space: device %q prefers unknown room %q", device, rid)
		}
		if !seen[rid] {
			seen[rid] = true
			prefs = append(prefs, rid)
		}
	}
	sort.Slice(prefs, func(i, j int) bool { return prefs[i] < prefs[j] })
	b.prefMu.Lock()
	b.preferred[device] = prefs
	b.prefMu.Unlock()
	return nil
}

// IsPublic reports whether the room exists and is public.
func (b *Building) IsPublic(r RoomID) bool {
	room, ok := b.rooms[r]
	return ok && room.Kind == Public
}

// IsPrivate reports whether the room exists and is private.
func (b *Building) IsPrivate(r RoomID) bool {
	room, ok := b.rooms[r]
	return ok && room.Kind == Private
}

// IntersectCandidates returns the sorted intersection of candidate-room sets
// for the given regions (the R_is set of Section 4.1). With no regions it
// returns nil.
func (b *Building) IntersectCandidates(regions []RegionID) []RoomID {
	if len(regions) == 0 {
		return nil
	}
	counts := make(map[RoomID]int)
	for _, g := range regions {
		for _, r := range b.CandidateRooms(g) {
			counts[r]++
		}
	}
	var out []RoomID
	for r, c := range counts {
		if c == len(regions) {
			out = append(out, r)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// OverlappingAPs returns R^ap(g): the sorted access points whose region
// shares at least one room with region g, g's own AP included. This is the
// neighborhood fine-grained neighbor discovery restricts its candidate scan
// to — a device can only be a neighbor (Algorithm 2's overlap condition) if
// it was seen at one of these APs. Unknown regions return nil. The slice is
// shared; callers must not modify it.
func (b *Building) OverlappingAPs(g RegionID) []APID {
	return b.overlapAPs[g]
}

// OverlappingRegions reports whether two regions share at least one room.
// Algorithm 2's neighbor definition requires R(g_x) ∩ R(g_y) ≠ ∅.
func (b *Building) OverlappingRegions(gx, gy RegionID) bool {
	rx := b.CandidateRooms(gx)
	ry := b.CandidateRooms(gy)
	i, j := 0, 0
	for i < len(rx) && j < len(ry) {
		switch {
		case rx[i] == ry[j]:
			return true
		case rx[i] < ry[j]:
			i++
		default:
			j++
		}
	}
	return false
}
