package space

import (
	"reflect"
	"testing"
	"time"
)

func TestTimePreferredRooms(t *testing.T) {
	b := fixture(t)
	// Lunch window 12:00–13:00 prefers the public room 2065; otherwise the
	// static preference 2061 applies.
	err := b.SetTimePreferredRooms("7fbh", []TimePreference{
		{StartMinute: 12 * 60, EndMinute: 13 * 60, Rooms: []RoomID{"2065"}},
	})
	if err != nil {
		t.Fatal(err)
	}
	day := time.Date(2026, 3, 2, 0, 0, 0, 0, time.UTC)
	if got := b.PreferredRoomsAt("7fbh", day.Add(12*time.Hour+30*time.Minute)); !reflect.DeepEqual(got, []RoomID{"2065"}) {
		t.Errorf("lunch prefs = %v, want [2065]", got)
	}
	if got := b.PreferredRoomsAt("7fbh", day.Add(9*time.Hour)); !reflect.DeepEqual(got, []RoomID{"2061"}) {
		t.Errorf("morning prefs = %v, want static [2061]", got)
	}
	// Device without time prefs: static set at all times.
	if got := b.PreferredRoomsAt("unknown", day); got != nil {
		t.Errorf("unknown device prefs = %v", got)
	}
	if got := b.TimePreferredRooms("7fbh"); len(got) != 1 {
		t.Errorf("TimePreferredRooms = %v", got)
	}
}

func TestTimePreferenceWrapsMidnight(t *testing.T) {
	b := fixture(t)
	// Night shift: 22:00–06:00 prefers 2004.
	err := b.SetTimePreferredRooms("night", []TimePreference{
		{StartMinute: 22 * 60, EndMinute: 6 * 60, Rooms: []RoomID{"2004"}},
	})
	if err != nil {
		t.Fatal(err)
	}
	day := time.Date(2026, 3, 2, 0, 0, 0, 0, time.UTC)
	if got := b.PreferredRoomsAt("night", day.Add(23*time.Hour)); !reflect.DeepEqual(got, []RoomID{"2004"}) {
		t.Errorf("23:00 prefs = %v", got)
	}
	if got := b.PreferredRoomsAt("night", day.Add(3*time.Hour)); !reflect.DeepEqual(got, []RoomID{"2004"}) {
		t.Errorf("03:00 prefs = %v", got)
	}
	if got := b.PreferredRoomsAt("night", day.Add(12*time.Hour)); got != nil {
		t.Errorf("noon prefs = %v, want nil (no static prefs)", got)
	}
}

func TestSetTimePreferredRoomsValidation(t *testing.T) {
	b := fixture(t)
	cases := []struct {
		name  string
		dev   string
		prefs []TimePreference
	}{
		{"empty device", "", []TimePreference{{EndMinute: 60, Rooms: []RoomID{"2061"}}}},
		{"negative start", "d", []TimePreference{{StartMinute: -1, EndMinute: 60, Rooms: []RoomID{"2061"}}}},
		{"start too large", "d", []TimePreference{{StartMinute: 24*60 + 1, EndMinute: 60, Rooms: []RoomID{"2061"}}}},
		{"no rooms", "d", []TimePreference{{EndMinute: 60}}},
		{"unknown room", "d", []TimePreference{{EndMinute: 60, Rooms: []RoomID{"bogus"}}}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if err := b.SetTimePreferredRooms(tc.dev, tc.prefs); err == nil {
				t.Error("expected validation error")
			}
		})
	}
}

func TestTimePreferenceDedupSort(t *testing.T) {
	b := fixture(t)
	err := b.SetTimePreferredRooms("d", []TimePreference{
		{StartMinute: 0, EndMinute: 24 * 60, Rooms: []RoomID{"2065", "2061", "2065"}},
	})
	if err != nil {
		t.Fatal(err)
	}
	got := b.TimePreferredRooms("d")[0].Rooms
	if !reflect.DeepEqual(got, []RoomID{"2061", "2065"}) {
		t.Errorf("rooms = %v, want deduped sorted", got)
	}
}
