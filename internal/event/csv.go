package event

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
	"time"

	"locater/internal/space"
)

// TimeLayout is the timestamp format used in CSV files, matching the paper's
// examples ("2019-08-22 13:04:35").
const TimeLayout = "2006-01-02 15:04:05"

// csvHeader is the column layout written and expected by the codec.
var csvHeader = []string{"eid", "mac_address", "timestamp", "wap"}

// WriteCSV writes events in the paper's table schema
// {eid, mac address, timestamp, wap} with a header row.
func WriteCSV(w io.Writer, events []Event) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(csvHeader); err != nil {
		return fmt.Errorf("event: writing CSV header: %w", err)
	}
	rec := make([]string, 4)
	for _, e := range events {
		rec[0] = strconv.FormatInt(e.ID, 10)
		rec[1] = string(e.Device)
		rec[2] = e.Time.Format(TimeLayout)
		rec[3] = string(e.AP)
		if err := cw.Write(rec); err != nil {
			return fmt.Errorf("event: writing CSV row for event %d: %w", e.ID, err)
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadCSV parses events written by WriteCSV. A leading header row is
// detected and skipped. Rows must have exactly four fields.
func ReadCSV(r io.Reader) ([]Event, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = 4
	var out []Event
	first := true
	for {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("event: reading CSV: %w", err)
		}
		if first {
			first = false
			if rec[0] == csvHeader[0] {
				continue // skip header
			}
		}
		id, err := strconv.ParseInt(rec[0], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("event: bad eid %q: %w", rec[0], err)
		}
		t, err := time.Parse(TimeLayout, rec[2])
		if err != nil {
			return nil, fmt.Errorf("event: bad timestamp %q: %w", rec[2], err)
		}
		if rec[1] == "" {
			return nil, fmt.Errorf("event: row %d has empty mac address", id)
		}
		if rec[3] == "" {
			return nil, fmt.Errorf("event: row %d has empty wap", id)
		}
		out = append(out, Event{ID: id, Device: DeviceID(rec[1]), Time: t, AP: space.APID(rec[3])})
	}
	return out, nil
}
