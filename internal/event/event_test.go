package event

import (
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"locater/internal/space"
)

var t0 = time.Date(2026, 3, 2, 9, 0, 0, 0, time.UTC)

func mk(dev string, offset time.Duration, ap string) Event {
	return Event{Device: DeviceID(dev), Time: t0.Add(offset), AP: space.APID(ap)}
}

func TestSortEvents(t *testing.T) {
	evs := []Event{
		{ID: 2, Device: "a", Time: t0.Add(time.Hour)},
		{ID: 1, Device: "a", Time: t0},
		{ID: 3, Device: "b", Time: t0},
	}
	SortEvents(evs)
	if evs[0].ID != 1 || evs[1].ID != 3 || evs[2].ID != 2 {
		t.Errorf("sort order wrong: %v", evs)
	}
}

func TestEventString(t *testing.T) {
	e := Event{ID: 1, Device: "7fbh", Time: t0, AP: "wap3"}
	if got := e.String(); got == "" {
		t.Error("empty String()")
	}
}

func TestNewTimelineValidation(t *testing.T) {
	if _, err := NewTimeline("d", 0, nil); err == nil {
		t.Error("zero delta should fail")
	}
	if _, err := NewTimeline("d", -time.Minute, nil); err == nil {
		t.Error("negative delta should fail")
	}
	if _, err := NewTimeline("d", time.Minute, []Event{mk("other", 0, "ap")}); err == nil {
		t.Error("foreign device event should fail")
	}
}

func TestValiditiesTruncation(t *testing.T) {
	// Events at 0, 5m, 30m with δ = 10m: e0's validity is truncated at e1's
	// timestamp; e1's validity spans (0m, 15m); e2's is untruncated on the
	// right.
	delta := 10 * time.Minute
	tl, err := NewTimeline("d", delta, []Event{
		mk("d", 0, "a"), mk("d", 5*time.Minute, "a"), mk("d", 30*time.Minute, "b"),
	})
	if err != nil {
		t.Fatal(err)
	}
	vals := tl.Validities()
	if len(vals) != 3 {
		t.Fatalf("got %d validities", len(vals))
	}
	if !vals[0].End.Equal(t0.Add(5 * time.Minute)) {
		t.Errorf("e0 end = %v, want truncation at e1's time", vals[0].End)
	}
	if !vals[1].Start.Equal(t0) {
		t.Errorf("e1 start = %v, want truncation at e0's time", vals[1].Start)
	}
	if !vals[1].End.Equal(t0.Add(15 * time.Minute)) {
		t.Errorf("e1 end = %v, want t1+δ", vals[1].End)
	}
	if !vals[2].End.Equal(t0.Add(40 * time.Minute)) {
		t.Errorf("e2 end = %v, want t2+δ", vals[2].End)
	}
}

func TestGapsDetection(t *testing.T) {
	delta := 10 * time.Minute
	tl, err := NewTimeline("d", delta, []Event{
		mk("d", 0, "a"),
		mk("d", 15*time.Minute, "a"),  // no gap: validities touch/overlap
		mk("d", 100*time.Minute, "b"), // gap: (25m, 90m)
	})
	if err != nil {
		t.Fatal(err)
	}
	gaps := tl.Gaps()
	if len(gaps) != 1 {
		t.Fatalf("got %d gaps, want 1: %v", len(gaps), gaps)
	}
	g := gaps[0]
	if !g.Start.Equal(t0.Add(25 * time.Minute)) {
		t.Errorf("gap start = %v, want t1+δ", g.Start)
	}
	if !g.End.Equal(t0.Add(90 * time.Minute)) {
		t.Errorf("gap end = %v, want t2−δ", g.End)
	}
	if g.Duration() != 65*time.Minute {
		t.Errorf("gap duration = %v", g.Duration())
	}
	if g.PrevEvent.Time != t0.Add(15*time.Minute) || g.NextEvent.Time != t0.Add(100*time.Minute) {
		t.Error("gap bounding events wrong")
	}
}

func TestAtClassification(t *testing.T) {
	delta := 10 * time.Minute
	tl, err := NewTimeline("d", delta, []Event{
		mk("d", 0, "a"),
		mk("d", 100*time.Minute, "b"),
	})
	if err != nil {
		t.Fatal(err)
	}

	// Inside e0's validity.
	v, g := tl.At(t0.Add(5 * time.Minute))
	if v == nil || g != nil {
		t.Fatalf("t=5m: want validity, got v=%v g=%v", v, g)
	}
	if v.Event.AP != "a" {
		t.Errorf("t=5m AP = %s", v.Event.AP)
	}
	// Left edge of e0's validity (closed interval).
	if v, _ := tl.At(t0.Add(-10 * time.Minute)); v == nil {
		t.Error("t=-10m should be inside validity (closed)")
	}
	// Inside the gap.
	v, g = tl.At(t0.Add(50 * time.Minute))
	if g == nil || v != nil {
		t.Fatalf("t=50m: want gap, got v=%v g=%v", v, g)
	}
	// Inside e1's validity.
	v, _ = tl.At(t0.Add(95 * time.Minute))
	if v == nil || v.Event.AP != "b" {
		t.Fatalf("t=95m: want validity of b, got %v", v)
	}
	// Before all data.
	v, g = tl.At(t0.Add(-time.Hour))
	if v != nil || g != nil {
		t.Error("t=-1h should be unknown")
	}
	// After all data.
	v, g = tl.At(t0.Add(5 * time.Hour))
	if v != nil || g != nil {
		t.Error("t=+5h should be unknown")
	}
}

func TestAtEmptyTimeline(t *testing.T) {
	tl, err := NewTimeline("d", time.Minute, nil)
	if err != nil {
		t.Fatal(err)
	}
	if v, g := tl.At(t0); v != nil || g != nil {
		t.Error("empty timeline should classify nothing")
	}
}

func TestEventsBetween(t *testing.T) {
	tl, err := NewTimeline("d", time.Minute, []Event{
		mk("d", 0, "a"), mk("d", 10*time.Minute, "a"), mk("d", 20*time.Minute, "b"),
	})
	if err != nil {
		t.Fatal(err)
	}
	got := tl.EventsBetween(t0.Add(5*time.Minute), t0.Add(15*time.Minute))
	if len(got) != 1 || got[0].Time != t0.Add(10*time.Minute) {
		t.Errorf("EventsBetween = %v", got)
	}
	if got := tl.EventsBetween(t0.Add(time.Hour), t0.Add(2*time.Hour)); got != nil {
		t.Errorf("empty window returned %v", got)
	}
	// Inclusive bounds.
	got = tl.EventsBetween(t0, t0.Add(20*time.Minute))
	if len(got) != 3 {
		t.Errorf("inclusive window returned %d events", len(got))
	}
}

func TestEstimateDelta(t *testing.T) {
	var evs []Event
	for i := 0; i < 20; i++ {
		evs = append(evs, mk("d", time.Duration(i)*5*time.Minute, "a"))
	}
	d := EstimateDelta(evs, 0.9, time.Minute, time.Hour, 10*time.Minute)
	if d != 5*time.Minute {
		t.Errorf("EstimateDelta = %v, want 5m (uniform spacing)", d)
	}
	// Too little data → fallback.
	d = EstimateDelta(evs[:1], 0.9, time.Minute, time.Hour, 10*time.Minute)
	if d != 10*time.Minute {
		t.Errorf("fallback = %v, want 10m", d)
	}
	// Clamping.
	d = EstimateDelta(evs, 0.9, 7*time.Minute, time.Hour, 10*time.Minute)
	if d != 7*time.Minute {
		t.Errorf("min clamp = %v, want 7m", d)
	}
	d = EstimateDelta(evs, 0.9, time.Minute, 3*time.Minute, 10*time.Minute)
	if d != 3*time.Minute {
		t.Errorf("max clamp = %v, want 3m", d)
	}
	// Invalid quantile falls back to 0.9.
	d = EstimateDelta(evs, -1, time.Minute, time.Hour, 10*time.Minute)
	if d != 5*time.Minute {
		t.Errorf("invalid quantile = %v, want 5m", d)
	}
}

// randomTimeline builds a random timeline for property tests.
func randomTimeline(rng *rand.Rand) *Timeline {
	n := rng.Intn(40)
	delta := time.Duration(1+rng.Intn(30)) * time.Minute
	evs := make([]Event, n)
	cur := t0
	for i := range evs {
		cur = cur.Add(time.Duration(rng.Intn(3600)) * time.Second)
		evs[i] = Event{Device: "d", Time: cur, AP: space.APID(string(rune('a' + rng.Intn(3))))}
	}
	tl, err := NewTimeline("d", delta, evs)
	if err != nil {
		panic(err)
	}
	return tl
}

// Property: gaps are disjoint, ordered, and lie strictly between the
// validity intervals of their bounding events.
func TestGapsInvariantsProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		tl := randomTimeline(rng)
		gaps := tl.Gaps()
		for i, g := range gaps {
			if !g.Start.Before(g.End) {
				return false
			}
			if i > 0 && gaps[i-1].End.After(g.Start) {
				return false
			}
			// Gap boundaries touch the neighbors' validity exactly.
			if !g.Start.Equal(g.PrevEvent.Time.Add(tl.Delta)) {
				return false
			}
			if !g.End.Equal(g.NextEvent.Time.Add(-tl.Delta)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

// Property: At(t) agrees with a scan over Validities() and Gaps(): a time
// inside some validity never reports a gap, and vice versa.
func TestAtAgreesWithScanProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		tl := randomTimeline(rng)
		if len(tl.Events) == 0 {
			return true
		}
		vals := tl.Validities()
		gaps := tl.Gaps()
		span := tl.Events[len(tl.Events)-1].Time.Sub(tl.Events[0].Time) + 2*tl.Delta
		for trial := 0; trial < 50; trial++ {
			tq := tl.Events[0].Time.Add(-tl.Delta + time.Duration(rng.Int63n(int64(span)+1)))
			v, g := tl.At(tq)
			inVal := false
			for _, val := range vals {
				if val.Contains(tq) {
					inVal = true
					break
				}
			}
			inGap := false
			for _, gap := range gaps {
				if gap.Contains(tq) || tq.Equal(gap.Start) || tq.Equal(gap.End) {
					inGap = true
					break
				}
			}
			if inVal && v == nil {
				return false
			}
			if !inVal && v != nil {
				return false
			}
			// Gaps only reported when not inside a validity.
			if v == nil && inGap && g == nil {
				return false
			}
			if g != nil && !inGap {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Property: validity intervals never overlap each other's event timestamps
// and are ordered.
func TestValidityInvariantsProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		tl := randomTimeline(rng)
		vals := tl.Validities()
		for i, v := range vals {
			if v.End.Before(v.Start) {
				return false
			}
			if i > 0 && v.Start.Before(vals[i-1].Event.Time) {
				return false
			}
			if i < len(vals)-1 && v.End.After(vals[i+1].Event.Time) {
				return false
			}
		}
		for i := 1; i < len(vals); i++ {
			if vals[i].Event.Time.Before(vals[i-1].Event.Time) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

// TestAPAtMatchesAt: the zero-alloc APAt must agree with At's validity case
// at every probe instant, including interval boundaries and gaps.
func TestAPAtMatchesAt(t *testing.T) {
	base := time.Date(2026, 3, 2, 9, 0, 0, 0, time.UTC)
	tl, err := NewTimeline("d", 10*time.Minute, []Event{
		{Device: "d", Time: base, AP: "ap1"},
		{Device: "d", Time: base.Add(5 * time.Minute), AP: "ap2"},
		{Device: "d", Time: base.Add(2 * time.Hour), AP: "ap3"},
	})
	if err != nil {
		t.Fatal(err)
	}
	for m := -30; m <= 200; m++ {
		probe := base.Add(time.Duration(m) * time.Minute)
		v, _ := tl.At(probe)
		ap, ok := tl.APAt(probe)
		if (v != nil) != ok {
			t.Fatalf("t=%v: At validity=%v, APAt ok=%v", probe, v != nil, ok)
		}
		if v != nil && v.Event.AP != ap {
			t.Errorf("t=%v: AP %s vs %s", probe, v.Event.AP, ap)
		}
	}
	// Empty timeline.
	empty := Timeline{Device: "d", Delta: time.Minute}
	if _, ok := empty.APAt(base); ok {
		t.Error("APAt on empty timeline")
	}
}
