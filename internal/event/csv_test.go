package event

import (
	"bytes"
	"strings"
	"testing"
	"time"
)

func TestCSVRoundTrip(t *testing.T) {
	events := []Event{
		{ID: 1, Device: "7fbh", Time: t0, AP: "wap3"},
		{ID: 2, Device: "3ndb", Time: t0.Add(42 * time.Second), AP: "wap4"},
		{ID: 3, Device: "dj8c", Time: t0.Add(time.Hour), AP: "wap3"},
	}
	var buf bytes.Buffer
	if err := WriteCSV(&buf, events); err != nil {
		t.Fatalf("WriteCSV: %v", err)
	}
	got, err := ReadCSV(&buf)
	if err != nil {
		t.Fatalf("ReadCSV: %v", err)
	}
	if len(got) != len(events) {
		t.Fatalf("round trip lost events: %d vs %d", len(got), len(events))
	}
	for i := range events {
		if got[i].ID != events[i].ID || got[i].Device != events[i].Device ||
			!got[i].Time.Equal(events[i].Time) || got[i].AP != events[i].AP {
			t.Errorf("event %d: got %+v want %+v", i, got[i], events[i])
		}
	}
}

func TestCSVEmpty(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteCSV(&buf, nil); err != nil {
		t.Fatalf("WriteCSV(nil): %v", err)
	}
	got, err := ReadCSV(&buf)
	if err != nil {
		t.Fatalf("ReadCSV: %v", err)
	}
	if len(got) != 0 {
		t.Errorf("got %d events from empty file", len(got))
	}
}

func TestCSVHeaderOptional(t *testing.T) {
	// A file without a header parses too.
	in := "5,aabb,2026-03-02 09:00:00,wap1\n"
	got, err := ReadCSV(strings.NewReader(in))
	if err != nil {
		t.Fatalf("ReadCSV: %v", err)
	}
	if len(got) != 1 || got[0].ID != 5 || got[0].Device != "aabb" {
		t.Errorf("parsed %+v", got)
	}
}

func TestCSVErrors(t *testing.T) {
	cases := []struct {
		name string
		in   string
	}{
		{"bad eid", "x,aabb,2026-03-02 09:00:00,wap1\n"},
		{"bad timestamp", "1,aabb,not-a-time,wap1\n"},
		{"empty mac", "1,,2026-03-02 09:00:00,wap1\n"},
		{"empty wap", "1,aabb,2026-03-02 09:00:00,\n"},
		{"wrong fields", "1,aabb,2026-03-02 09:00:00\n"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := ReadCSV(strings.NewReader(tc.in)); err == nil {
				t.Errorf("expected error for %q", tc.in)
			}
		})
	}
}
