// Package event implements LOCATER's WiFi connectivity data model: the raw
// association events ⟨mac address, timestamp, wap⟩ logged by access points,
// the per-device temporal validity interval δ that turns sporadic events
// into covered time intervals, and the detection of gaps — the periods in
// which no event is valid for a device, which coarse-grained localization
// treats as missing values to repair (paper Section 2).
package event

import (
	"fmt"
	"sort"
	"time"

	"locater/internal/space"
)

// DeviceID identifies a device by its MAC address.
type DeviceID string

// Event is one WiFi association event: device d connected to access point
// AP at time T. Events are logged by the wireless controller whenever a
// device associates, probes, or changes status, and therefore occur only
// sporadically even for stationary devices.
type Event struct {
	// ID is the event identifier (eid). Zero is valid for synthetic data;
	// the store assigns sequence numbers on ingest when ID == 0.
	ID int64
	// Device is the MAC address of the connected device.
	Device DeviceID
	// Time is the association timestamp.
	Time time.Time
	// AP is the access point that logged the association.
	AP space.APID
}

// String renders the event like the paper's Figure 1(b) rows.
func (e Event) String() string {
	return fmt.Sprintf("e%d{%s, %s, %s}", e.ID, e.Device, e.Time.Format("2006-01-02 15:04:05"), e.AP)
}

// Before reports whether e is ordered before f by (Time, ID, Device).
func (e Event) Before(f Event) bool {
	if !e.Time.Equal(f.Time) {
		return e.Time.Before(f.Time)
	}
	if e.ID != f.ID {
		return e.ID < f.ID
	}
	return e.Device < f.Device
}

// SortEvents orders events by (Time, ID, Device) in place.
func SortEvents(events []Event) {
	sort.Slice(events, func(i, j int) bool { return events[i].Before(events[j]) })
}

// Validity is the validity interval of a single event: the period during
// which the device is assumed to remain in the region covered by the event's
// AP. An event e_n at time t_n is valid in (t_n − δ, t_n + δ), truncated so
// that it does not overlap the timestamps of the neighboring events of the
// same device (paper Section 2, Figure 2).
type Validity struct {
	Event Event
	Start time.Time
	End   time.Time
}

// Contains reports whether t lies inside the validity interval. The interval
// is treated as closed, matching the paper's containment test
// t_n − δ ≤ t_q ≤ t_n + δ.
func (v Validity) Contains(t time.Time) bool {
	return !t.Before(v.Start) && !t.After(v.End)
}

// Gap is a maximal period in which no connectivity event is valid for a
// device: Start = t_0 + δ (end of the previous event's validity) and
// End = t_1 − δ (start of the next event's validity). Gaps are the missing
// values that coarse-grained localization detects and repairs.
type Gap struct {
	Device DeviceID
	// Start and End delimit the gap (gap.t_str, gap.t_end).
	Start time.Time
	End   time.Time
	// PrevEvent and NextEvent are the consecutive connectivity events
	// e_0, e_1 between which the gap occurs.
	PrevEvent Event
	NextEvent Event
}

// Duration returns δ(gap) = End − Start.
func (g Gap) Duration() time.Duration { return g.End.Sub(g.Start) }

// Contains reports whether t falls strictly inside the gap. Containment is
// exclusive of the endpoints because the endpoints belong to the adjacent
// validity intervals.
func (g Gap) Contains(t time.Time) bool {
	return t.After(g.Start) && t.Before(g.End)
}

// String renders the gap for diagnostics.
func (g Gap) String() string {
	return fmt.Sprintf("gap{%s, %s → %s, %s}", g.Device,
		g.Start.Format("2006-01-02 15:04:05"), g.End.Format("15:04:05"), g.Duration())
}

// Timeline is the per-device view of a connectivity log: the device's events
// in time order plus the validity interval parameter δ(d). It exposes the
// validity/gap structure of Figure 2.
type Timeline struct {
	Device DeviceID
	Delta  time.Duration
	// Events must be sorted by time; NewTimeline sorts a copy.
	Events []Event
}

// NewTimeline copies and sorts the device's events and attaches δ.
// It returns an error when delta is not positive or events from other
// devices are mixed in.
func NewTimeline(device DeviceID, delta time.Duration, events []Event) (*Timeline, error) {
	if delta <= 0 {
		return nil, fmt.Errorf("event: non-positive validity interval %v for device %s", delta, device)
	}
	evs := make([]Event, 0, len(events))
	for _, e := range events {
		if e.Device != device {
			return nil, fmt.Errorf("event: timeline for %s given event of %s", device, e.Device)
		}
		evs = append(evs, e)
	}
	SortEvents(evs)
	return &Timeline{Device: device, Delta: delta, Events: evs}, nil
}

// Validities computes the truncated validity interval of every event.
// Event e_n at t_n is valid in (t_n − δ, t_n + δ); when that interval would
// overlap a neighboring event of the same device the boundary shrinks to the
// neighbor's timestamp (paper Section 2: e_1 valid in (t_1 − δ, t_2)).
func (tl *Timeline) Validities() []Validity {
	out := make([]Validity, len(tl.Events))
	for i, e := range tl.Events {
		start := e.Time.Add(-tl.Delta)
		end := e.Time.Add(tl.Delta)
		if i > 0 {
			prev := tl.Events[i-1].Time
			if start.Before(prev) {
				start = prev
			}
		}
		if i < len(tl.Events)-1 {
			next := tl.Events[i+1].Time
			if end.After(next) {
				end = next
			}
		}
		out[i] = Validity{Event: e, Start: start, End: end}
	}
	return out
}

// Gaps detects every gap in the timeline: for consecutive events e_0, e_1
// with t_0 + δ < t_1 − δ there is a gap (t_0 + δ, t_1 − δ). The returned
// gaps are disjoint and ordered.
func (tl *Timeline) Gaps() []Gap {
	var out []Gap
	for i := 0; i+1 < len(tl.Events); i++ {
		e0, e1 := tl.Events[i], tl.Events[i+1]
		start := e0.Time.Add(tl.Delta)
		end := e1.Time.Add(-tl.Delta)
		if start.Before(end) {
			out = append(out, Gap{
				Device:    tl.Device,
				Start:     start,
				End:       end,
				PrevEvent: e0,
				NextEvent: e1,
			})
		}
	}
	return out
}

// At classifies the query time t against the timeline. Exactly one of the
// returned pointers is non-nil when the timeline has events around t:
//
//   - a *Validity when t lies inside some event's validity interval (the
//     device's coarse location is then the region of that event's AP);
//   - a *Gap when t falls inside a gap (missing value to repair).
//
// Both are nil when t precedes the first event's validity or follows the
// last event's validity — the log carries no information there, and the
// caller decides how to treat the device (LOCATER treats it as outside).
func (tl *Timeline) At(t time.Time) (*Validity, *Gap) {
	n := len(tl.Events)
	if n == 0 {
		return nil, nil
	}
	// Find the first event with Time > t.
	idx := sort.Search(n, func(i int) bool { return tl.Events[i].Time.After(t) })
	// Candidate events: idx-1 (last event at or before t) and idx (first
	// event after t). The validity of either may contain t.
	vals := []int{}
	if idx > 0 {
		vals = append(vals, idx-1)
	}
	if idx < n {
		vals = append(vals, idx)
	}
	for _, i := range vals {
		v := tl.validityAt(i)
		if v.Contains(t) {
			return &v, nil
		}
	}
	// Not inside any validity: check the enclosing gap if one exists.
	if idx > 0 && idx < n {
		e0, e1 := tl.Events[idx-1], tl.Events[idx]
		start := e0.Time.Add(tl.Delta)
		end := e1.Time.Add(-tl.Delta)
		if start.Before(end) {
			g := Gap{Device: tl.Device, Start: start, End: end, PrevEvent: e0, NextEvent: e1}
			if g.Contains(t) || t.Equal(g.Start) || t.Equal(g.End) {
				return nil, &g
			}
		}
	}
	return nil, nil
}

// APAt returns the AP of the event whose validity interval contains t, if
// any. It answers the same question as At(t) restricted to the validity case
// but allocates nothing — this is the per-neighbor "online" test the fine
// stage issues for every candidate device of every query.
func (tl *Timeline) APAt(t time.Time) (space.APID, bool) {
	n := len(tl.Events)
	if n == 0 {
		return "", false
	}
	idx := sort.Search(n, func(i int) bool { return tl.Events[i].Time.After(t) })
	if idx > 0 {
		if v := tl.validityAt(idx - 1); v.Contains(t) {
			return v.Event.AP, true
		}
	}
	if idx < n {
		if v := tl.validityAt(idx); v.Contains(t) {
			return v.Event.AP, true
		}
	}
	return "", false
}

// validityAt computes the truncated validity of the i-th event only.
func (tl *Timeline) validityAt(i int) Validity {
	e := tl.Events[i]
	start := e.Time.Add(-tl.Delta)
	end := e.Time.Add(tl.Delta)
	if i > 0 {
		prev := tl.Events[i-1].Time
		if start.Before(prev) {
			start = prev
		}
	}
	if i < len(tl.Events)-1 {
		next := tl.Events[i+1].Time
		if end.After(next) {
			end = next
		}
	}
	return Validity{Event: e, Start: start, End: end}
}

// EventsBetween returns the timeline's events with Start ≤ t ≤ End,
// using binary search.
func (tl *Timeline) EventsBetween(start, end time.Time) []Event {
	n := len(tl.Events)
	lo := sort.Search(n, func(i int) bool { return !tl.Events[i].Time.Before(start) })
	hi := sort.Search(n, func(i int) bool { return tl.Events[i].Time.After(end) })
	if lo >= hi {
		return nil
	}
	return tl.Events[lo:hi]
}

// EstimateDelta estimates the validity interval δ(d) for a device from its
// event log, as sketched in Appendix 9.1: while a device stays in one place
// its log shows how often it reconnects, so δ is taken from the distribution
// of same-AP inter-event spacings. We use the given quantile (e.g. 0.9) of
// consecutive same-AP inter-arrival times, clamped to [min, max]. With fewer
// than two usable samples the fallback value is returned.
func EstimateDelta(events []Event, quantile float64, minD, maxD, fallback time.Duration) time.Duration {
	if quantile <= 0 || quantile > 1 {
		quantile = 0.9
	}
	evs := make([]Event, len(events))
	copy(evs, events)
	SortEvents(evs)
	var spacings []time.Duration
	for i := 0; i+1 < len(evs); i++ {
		if evs[i].AP == evs[i+1].AP {
			d := evs[i+1].Time.Sub(evs[i].Time)
			if d > 0 {
				spacings = append(spacings, d)
			}
		}
	}
	if len(spacings) < 2 {
		return fallback
	}
	sort.Slice(spacings, func(i, j int) bool { return spacings[i] < spacings[j] })
	idx := int(quantile * float64(len(spacings)-1))
	d := spacings[idx]
	if d < minD {
		d = minD
	}
	if d > maxD {
		d = maxD
	}
	return d
}
