// Package cluster shards a LOCATER deployment across N independent System
// engines behind one router, turning the single-building prototype into a
// campus/fleet-scale service. Each shard owns its own event store, WAL
// directory, cache tiers, and occupancy index, so shards never contend on a
// lock: ingest fans out to the owning shards in parallel (the store's
// exclusive ingest lock is per-shard, which is what unlocks multi-core
// ingest), queries route to the single owning shard, and batch queries are
// split by shard, answered concurrently, and re-merged in input order.
//
// Two routing policies exist:
//
//   - ByDevice hashes the device ID across N shards of one shared building.
//     Throughput-oriented: co-location history is partitioned with the
//     devices, so the fine stage's neighbor evidence becomes shard-local (a
//     neighbor hashed to another shard is invisible). A 1-shard cluster is
//     byte-identical to a bare System; multi-shard answers are a documented
//     approximation that trades neighbor completeness for parallelism.
//   - ByBuilding gives each shard its own building. Routing is exact, not
//     approximate: devices and their neighbors live in the same building,
//     so per-shard answers equal a per-building System's. Events route by
//     the access point's building; a device is homed to the shard where it
//     was first seen and stays there.
//
// The Cluster implements the locater.Locater service interface, so the HTTP
// layer, benchmarks, and load harness drive a cluster exactly as they drive
// a single System.
package cluster

import (
	"errors"
	"fmt"
	"hash/fnv"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"sync"
	"time"

	"locater"

	"context"
)

// Routing policy names (Options.ShardBy).
const (
	// ByDevice partitions one building's devices across shards by a hash
	// of the device ID.
	ByDevice = "device"
	// ByBuilding gives each shard one building; events route by AP,
	// devices are homed to the shard where they were first seen.
	ByBuilding = "building"
)

// Options configures the router.
type Options struct {
	// Shards is the shard count for ByDevice routing (≥ 1). Ignored for
	// ByBuilding, where len(Buildings) decides.
	Shards int
	// ShardBy selects the routing policy: ByDevice (default) or
	// ByBuilding.
	ShardBy string
	// Buildings are the per-shard buildings for ByBuilding routing, one
	// per shard. Unused for ByDevice (every shard shares Config.Building).
	Buildings []*locater.Building
}

func (o Options) normalized(cfg locater.Config) (Options, error) {
	if o.ShardBy == "" {
		o.ShardBy = ByDevice
	}
	switch o.ShardBy {
	case ByDevice:
		if o.Shards < 1 {
			o.Shards = 1
		}
		if cfg.Building == nil {
			return o, fmt.Errorf("cluster: ByDevice routing needs Config.Building")
		}
	case ByBuilding:
		if len(o.Buildings) == 0 {
			return o, fmt.Errorf("cluster: ByBuilding routing needs Options.Buildings")
		}
		o.Shards = len(o.Buildings)
	default:
		return o, fmt.Errorf("cluster: unknown routing policy %q (want %q or %q)", o.ShardBy, ByDevice, ByBuilding)
	}
	return o, nil
}

// Cluster is N independent System shards behind a router. Safe for
// concurrent use: routing state is read-mostly (the device→shard home map
// only grows, under its own RWMutex), and everything else delegates to the
// shards, which synchronize themselves.
type Cluster struct {
	opts   Options
	shards []*locater.System

	// apShard routes ingest events by access point (ByBuilding only).
	apShard map[locater.APID]int
	// mu guards home, the device→shard registry (ByBuilding only).
	mu   sync.RWMutex
	home map[locater.DeviceID]int
}

// Compile-time checks: the cluster is a full Locater, exposes its
// topology, and merges its shards' quarantine rings.
var (
	_ locater.Locater     = (*Cluster)(nil)
	_ locater.Sharded     = (*Cluster)(nil)
	_ locater.Quarantiner = (*Cluster)(nil)
)

// New assembles an in-memory cluster: opts.Shards (or len(opts.Buildings))
// independent systems built from cfg. For ByDevice every shard shares
// cfg.Building; for ByBuilding shard i serves opts.Buildings[i].
func New(cfg locater.Config, opts Options) (*Cluster, error) {
	return assemble(cfg, opts, func(i int, shardCfg locater.Config) (*locater.System, error) {
		return locater.New(shardCfg)
	})
}

// Open assembles a durable cluster rooted at dir: shard i logs to the
// subdirectory shard-<i> and recovers it independently on startup, so a
// restarted cluster answers exactly as the one that was shut down or
// killed. The ByBuilding device→shard registry is rebuilt from the
// recovered shards' device sets.
func Open(dir string, cfg locater.Config, popts locater.PersistOptions, opts Options) (*Cluster, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("cluster: creating data dir: %w", err)
	}
	c, err := assemble(cfg, opts, func(i int, shardCfg locater.Config) (*locater.System, error) {
		return locater.Open(ShardDir(dir, i), shardCfg, popts)
	})
	if err != nil {
		return nil, err
	}
	if c.opts.ShardBy == ByBuilding {
		// Recovered devices re-home to the shard that persisted them;
		// conflicts (a device recovered on two shards) keep the lowest
		// index, matching first-seen-wins at ingest time.
		for i := len(c.shards) - 1; i >= 0; i-- {
			for _, d := range c.shards[i].Devices() {
				c.home[d] = i
			}
		}
	}
	return c, nil
}

// ShardDir returns the WAL subdirectory of shard i under the cluster's
// data directory.
func ShardDir(dir string, i int) string {
	return filepath.Join(dir, fmt.Sprintf("shard-%03d", i))
}

func assemble(cfg locater.Config, opts Options, build func(int, locater.Config) (*locater.System, error)) (*Cluster, error) {
	opts, err := opts.normalized(cfg)
	if err != nil {
		return nil, err
	}
	c := &Cluster{opts: opts, shards: make([]*locater.System, opts.Shards)}
	for i := range c.shards {
		shardCfg := cfg
		if opts.ShardBy == ByBuilding {
			shardCfg.Building = opts.Buildings[i]
		}
		// An explicit cold-tier directory fans out per shard: shards own
		// disjoint device sets, and sealed-segment files must not collide.
		// (Left empty, each durable shard defaults to <shardDir>/segments.)
		if shardCfg.ColdTierDir != "" {
			shardCfg.ColdTierDir = filepath.Join(shardCfg.ColdTierDir, fmt.Sprintf("shard-%03d", i))
		}
		sys, err := build(i, shardCfg)
		if err != nil {
			for _, built := range c.shards[:i] {
				built.Close()
			}
			return nil, fmt.Errorf("cluster: shard %d: %w", i, err)
		}
		c.shards[i] = sys
	}
	if opts.ShardBy == ByBuilding {
		c.apShard = make(map[locater.APID]int)
		c.home = make(map[locater.DeviceID]int)
		for i, b := range opts.Buildings {
			for _, ap := range b.AccessPoints() {
				if owner, dup := c.apShard[ap]; dup {
					for _, built := range c.shards {
						built.Close()
					}
					return nil, fmt.Errorf("cluster: access point %s appears in buildings %d and %d (AP sets must be disjoint)", ap, owner, i)
				}
				c.apShard[ap] = i
			}
		}
	}
	return c, nil
}

// hashShard is FNV-1a over the device ID, reduced mod the shard count.
func (c *Cluster) hashShard(d locater.DeviceID) int {
	h := fnv.New64a()
	h.Write([]byte(d))
	return int(h.Sum64() % uint64(len(c.shards)))
}

// shardOf resolves the shard owning a device's queries and writes. ByDevice
// hashes; ByBuilding consults the home registry, falling back to the hash
// for devices never ingested (any shard answers their queries with the same
// "unknown device" outcome).
func (c *Cluster) shardOf(d locater.DeviceID) int {
	if len(c.shards) == 1 {
		return 0
	}
	if c.opts.ShardBy == ByBuilding {
		c.mu.RLock()
		i, ok := c.home[d]
		c.mu.RUnlock()
		if ok {
			return i
		}
	}
	return c.hashShard(d)
}

// Shard exposes shard i's engine (tests and benchmarks reconcile merged
// figures against the shards directly).
func (c *Cluster) Shard(i int) *locater.System { return c.shards[i] }

// NumShards implements locater.Sharded.
func (c *Cluster) NumShards() int { return len(c.shards) }

// ShardPolicy implements locater.Sharded.
func (c *Cluster) ShardPolicy() string { return c.opts.ShardBy }

// ShardInfos implements locater.Sharded: per-shard counters, index-ordered.
func (c *Cluster) ShardInfos() []locater.ShardInfo {
	infos := make([]locater.ShardInfo, len(c.shards))
	for i, s := range c.shards {
		info := locater.ShardInfo{
			Index:    i,
			Building: s.Building().Name(),
			Events:   s.NumEvents(),
			Devices:  s.NumDevices(),
			Queries:  s.NumQueries(),
		}
		if segments, last, durable, ok := s.PersistStats(); ok {
			info.Segments, info.LastLSN, info.DurableLSN, info.Durable = segments, last, durable, true
		}
		infos[i] = info
	}
	return infos
}

// route partitions events into per-shard batches, preserving each shard's
// relative event order. ByBuilding also homes first-seen devices: the
// event's AP decides the building, and every later event or query for that
// device routes to the same shard regardless of AP.
func (c *Cluster) route(events []locater.Event) [][]locater.Event {
	parts := make([][]locater.Event, len(c.shards))
	if c.opts.ShardBy != ByBuilding {
		for _, e := range events {
			i := c.hashShard(e.Device)
			parts[i] = append(parts[i], e)
		}
		return parts
	}
	c.mu.Lock()
	for _, e := range events {
		i, ok := c.home[e.Device]
		if !ok {
			if byAP, known := c.apShard[e.AP]; known {
				i = byAP
			} else {
				i = c.hashShard(e.Device)
			}
			c.home[e.Device] = i
		}
		parts[i] = append(parts[i], e)
	}
	c.mu.Unlock()
	return parts
}

// Ingest routes the batch and ingests every shard's part concurrently. The
// per-shard stores synchronize independently, so an N-shard ingest uses up
// to N cores where a single System serializes on one store lock. Per-shard
// errors are joined; a failing shard does not abort the others (matching
// System.Ingest's all-or-nothing semantics per shard, not per cluster).
func (c *Cluster) Ingest(events []locater.Event) error {
	if len(c.shards) == 1 {
		return c.shards[0].Ingest(events)
	}
	parts := c.route(events)
	errs := make([]error, len(c.shards))
	var wg sync.WaitGroup
	for i, part := range parts {
		if len(part) == 0 {
			continue
		}
		wg.Add(1)
		go func(i int, part []locater.Event) {
			defer wg.Done()
			if err := c.shards[i].Ingest(part); err != nil {
				errs[i] = fmt.Errorf("shard %d: %w", i, err)
			}
		}(i, part)
	}
	wg.Wait()
	return errors.Join(errs...)
}

// IngestOne routes a single streamed event to its owning shard.
func (c *Cluster) IngestOne(e locater.Event) error {
	if c.opts.ShardBy == ByBuilding {
		// Route through the batch path so first-seen homing applies.
		parts := c.route([]locater.Event{e})
		for i, part := range parts {
			if len(part) > 0 {
				return c.shards[i].IngestOne(e)
			}
		}
	}
	return c.shards[c.shardOf(e.Device)].IngestOne(e)
}

// SetDelta registers a device-specific validity interval on the owning
// shard.
func (c *Cluster) SetDelta(d locater.DeviceID, delta time.Duration) error {
	return c.shards[c.shardOf(d)].SetDelta(d, delta)
}

// EstimateDeltas fans to every shard concurrently; each shard estimates
// from its own logs (the estimator is per-device, so sharding does not
// change any estimate).
func (c *Cluster) EstimateDeltas(quantile float64, min, max time.Duration) error {
	errs := make([]error, len(c.shards))
	var wg sync.WaitGroup
	for i := range c.shards {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if err := c.shards[i].EstimateDeltas(quantile, min, max); err != nil {
				errs[i] = fmt.Errorf("shard %d: %w", i, err)
			}
		}(i)
	}
	wg.Wait()
	return errors.Join(errs...)
}

// AddRoomLabel records a room-level observation on the device's owning
// shard (the room must belong to that shard's building).
func (c *Cluster) AddRoomLabel(d locater.DeviceID, r locater.RoomID, t time.Time) error {
	return c.shards[c.shardOf(d)].AddRoomLabel(d, r, t)
}

// SetTimePreferredRooms registers time-scoped preferred rooms on the
// device's owning shard.
func (c *Cluster) SetTimePreferredRooms(d locater.DeviceID, prefs []locater.TimePreference) error {
	return c.shards[c.shardOf(d)].SetTimePreferredRooms(d, prefs)
}

// Locate answers Q = (device, t) on the owning shard.
func (c *Cluster) Locate(d locater.DeviceID, t time.Time) (locater.Result, error) {
	return c.shards[c.shardOf(d)].Locate(d, t)
}

// LocateContext is Locate under a context deadline, on the owning shard.
func (c *Cluster) LocateContext(ctx context.Context, d locater.DeviceID, t time.Time) (locater.Result, error) {
	return c.shards[c.shardOf(d)].LocateContext(ctx, d, t)
}

// LocateBatch answers many queries across shards, results in input order.
func (c *Cluster) LocateBatch(queries []locater.Query, workers int) []locater.BatchResult {
	return c.LocateBatchContext(context.Background(), queries, workers)
}

// LocateBatchContext splits the batch by owning shard, answers every
// sub-batch concurrently on the shards' own worker pools, and re-merges the
// answers into input order. Per-query errors stay attached to their slots —
// one failing query never aborts the rest, exactly as in System. The worker
// budget is divided across shards proportionally to their share of the
// batch (at least one worker each), so the cluster-wide pool stays at the
// caller's bound instead of multiplying by the shard count.
func (c *Cluster) LocateBatchContext(ctx context.Context, queries []locater.Query, workers int) []locater.BatchResult {
	if len(c.shards) == 1 {
		return c.shards[0].LocateBatchContext(ctx, queries, workers)
	}
	out := make([]locater.BatchResult, len(queries))
	if len(queries) == 0 {
		return out
	}
	if workers < 1 {
		workers = runtime.GOMAXPROCS(0)
	}
	idxs := make([][]int, len(c.shards))
	for i, q := range queries {
		s := c.shardOf(q.Device)
		idxs[s] = append(idxs[s], i)
	}
	var wg sync.WaitGroup
	for s, ix := range idxs {
		if len(ix) == 0 {
			continue
		}
		sub := make([]locater.Query, len(ix))
		for j, i := range ix {
			sub[j] = queries[i]
		}
		w := workers * len(ix) / len(queries)
		if w < 1 {
			w = 1
		}
		wg.Add(1)
		go func(s int, ix []int, sub []locater.Query, w int) {
			defer wg.Done()
			res := c.shards[s].LocateBatchContext(ctx, sub, w)
			for j, i := range ix {
				out[i] = res[j]
			}
		}(s, ix, sub, w)
	}
	wg.Wait()
	return out
}

// Building returns the first shard's building (ByDevice clusters share one
// building across all shards; ByBuilding callers should consult ShardInfos
// for the full list).
func (c *Cluster) Building() *locater.Building { return c.shards[0].Building() }

// NumEvents sums ingested events across shards.
func (c *Cluster) NumEvents() int {
	n := 0
	for _, s := range c.shards {
		n += s.NumEvents()
	}
	return n
}

// NumDevices sums distinct devices across shards (shards partition the
// device space, so the sum is exact).
func (c *Cluster) NumDevices() int {
	n := 0
	for _, s := range c.shards {
		n += s.NumDevices()
	}
	return n
}

// NumQueries sums served queries across shards.
func (c *Cluster) NumQueries() int {
	n := 0
	for _, s := range c.shards {
		n += s.NumQueries()
	}
	return n
}

// CacheStats merges every shard's cache tiers (sums — each shard's caches
// are independent).
func (c *Cluster) CacheStats() locater.CacheStats {
	parts := make([]locater.CacheStats, len(c.shards))
	for i, s := range c.shards {
		parts[i] = s.CacheStats()
	}
	return locater.MergeCacheStats(parts...)
}

// CleansingEnabled reports whether any shard runs the ingest-time
// cleansing stage. Clusters are configured uniformly, so in practice this
// is all-or-nothing.
func (c *Cluster) CleansingEnabled() bool {
	for _, s := range c.shards {
		if s.CleansingEnabled() {
			return true
		}
	}
	return false
}

// CleanseStats sums every shard's cleansing counters. Each shard cleanses
// its own slice of the ingest stream independently, so the per-rule totals
// are exact.
func (c *Cluster) CleanseStats() locater.CleanseStats {
	var out locater.CleanseStats
	for _, s := range c.shards {
		p := s.CleanseStats()
		out.Ingested += p.Ingested
		out.Kept += p.Kept
		out.Duplicates += p.Duplicates
		out.Reassociations += p.Reassociations
		out.Oscillations += p.Oscillations
		out.ImpossibleTransitions += p.ImpossibleTransitions
		out.FlaggedDevices += p.FlaggedDevices
		out.Quarantined += p.Quarantined
		out.QuarantineEvicted += p.QuarantineEvicted
	}
	return out
}

// Quarantine merges the shards' quarantine rings into one newest-first
// view, truncated to limit (limit ≤ 0 keeps everything the rings retain).
// Entries order by observation time, breaking ties on event time, so the
// merged view reads like a single ring regardless of which shard rejected
// each event.
func (c *Cluster) Quarantine(limit int) []locater.QuarantineEntry {
	var merged []locater.QuarantineEntry
	for _, s := range c.shards {
		merged = append(merged, s.Quarantine(limit)...)
	}
	sort.SliceStable(merged, func(i, j int) bool {
		if !merged[i].At.Equal(merged[j].At) {
			return merged[i].At.After(merged[j].At)
		}
		return merged[i].Event.Time.After(merged[j].Event.Time)
	})
	if limit > 0 && len(merged) > limit {
		merged = merged[:limit]
	}
	return merged
}

// QueryStats merges every shard's latency populations (counts sum,
// quantiles take the worst shard — see locater.MergeQueryStats).
func (c *Cluster) QueryStats() locater.QueryStats {
	parts := make([]locater.QueryStats, len(c.shards))
	for i, s := range c.shards {
		parts[i] = s.QueryStats()
	}
	return locater.MergeQueryStats(parts...)
}

// PersistStats sums the shards' WAL shapes: segment counts and log
// positions add up across independent logs, so the merged counters
// reconcile exactly with per-shard sums. ok reports whether every shard is
// durable (clusters are opened uniformly, so mixed durability only arises
// from misuse).
func (c *Cluster) PersistStats() (segments int, lastLSN, durableLSN uint64, ok bool) {
	ok = true
	for _, s := range c.shards {
		seg, last, durable, shardOK := s.PersistStats()
		if !shardOK {
			ok = false
			continue
		}
		segments += seg
		lastLSN += last
		durableLSN += durable
	}
	return segments, lastLSN, durableLSN, ok
}

// Checkpoint snapshots and compacts every shard's log concurrently.
func (c *Cluster) Checkpoint() error {
	return c.fanOut(func(s *locater.System) error { return s.Checkpoint() })
}

// Close checkpoints and releases every shard. The cluster must not be used
// after Close.
func (c *Cluster) Close() error {
	return c.fanOut(func(s *locater.System) error { return s.Close() })
}

func (c *Cluster) fanOut(fn func(*locater.System) error) error {
	errs := make([]error, len(c.shards))
	var wg sync.WaitGroup
	for i := range c.shards {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if err := fn(c.shards[i]); err != nil {
				errs[i] = fmt.Errorf("shard %d: %w", i, err)
			}
		}(i)
	}
	wg.Wait()
	return errors.Join(errs...)
}
