package cluster_test

import (
	"context"
	"os"
	"testing"
	"time"

	"locater"
	"locater/internal/cluster"
	"locater/internal/sim"
)

var simStart = time.Date(2026, 1, 5, 0, 0, 0, 0, time.UTC)

func buildDataset(t testing.TB, perClass, days int, seed int64) *sim.Dataset {
	t.Helper()
	sc, err := sim.DBH(perClass)
	if err != nil {
		t.Fatal(err)
	}
	ds, err := sim.Generate(sc.Config(simStart, days, seed))
	if err != nil {
		t.Fatal(err)
	}
	return ds
}

func testConfig(b *locater.Building) locater.Config {
	return locater.Config{
		Building:           b,
		EnableCache:        true,
		HistoryDays:        14,
		PromotionsPerRound: 8,
		MaxTrainingGaps:    100,
	}
}

// ingestChunks streams events in batches, the shape a live deployment has.
func ingestChunks(t testing.TB, sys locater.Locater, events []locater.Event) {
	t.Helper()
	const chunk = 256
	for i := 0; i < len(events); i += chunk {
		end := i + chunk
		if end > len(events) {
			end = len(events)
		}
		if err := sys.Ingest(events[i:end]); err != nil {
			t.Fatal(err)
		}
	}
}

func estimate(t testing.TB, sys locater.Locater) {
	t.Helper()
	if err := sys.EstimateDeltas(0.9, 2*time.Minute, 15*time.Minute); err != nil {
		t.Fatal(err)
	}
}

// sampleQueries picks deterministic daytime query points interleaved across
// devices, so consecutive queries route to different shards.
func sampleQueries(ds *sim.Dataset, n int) []locater.Query {
	queries := make([]locater.Query, 0, n)
	for i := 0; len(queries) < n; i++ {
		p := ds.People[i%len(ds.People)]
		hour := 9 + (i*3)%9
		day := 1 + i%4
		queries = append(queries, locater.Query{
			Device: p.Device,
			Time:   simStart.Add(time.Duration(day*24+hour) * time.Hour),
		})
	}
	return queries
}

// TestSingleShardClusterIdenticalToSystem is the strict correctness gate: a
// cluster of one shard must be indistinguishable from a bare System — every
// Result byte-identical (full struct equality, diagnostics included), no
// errors on either side.
func TestSingleShardClusterIdenticalToSystem(t *testing.T) {
	ds := buildDataset(t, 2, 7, 77)

	sys, err := locater.New(testConfig(ds.Building))
	if err != nil {
		t.Fatal(err)
	}
	c, err := cluster.New(testConfig(ds.Building), cluster.Options{Shards: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	ingestChunks(t, sys, ds.Events)
	ingestChunks(t, c, ds.Events)
	estimate(t, sys)
	estimate(t, c)

	if got, want := c.NumEvents(), sys.NumEvents(); got != want {
		t.Fatalf("cluster holds %d events, system %d", got, want)
	}
	// Serialized batches (workers=1): concurrent workers interleave the
	// fine stage's incremental affinity-graph updates nondeterministically,
	// which perturbs posteriors of later queries in the same batch. The
	// byte-identity contract is defined over the deterministic serial
	// execution.
	queries := sampleQueries(ds, 60)
	want := sys.LocateBatch(queries, 1)
	got := c.LocateBatch(queries, 1)
	for i := range queries {
		if want[i].Err != nil || got[i].Err != nil {
			t.Fatalf("query %d errored: system=%v cluster=%v", i, want[i].Err, got[i].Err)
		}
		if want[i].Result != got[i].Result {
			t.Errorf("query %d (%s, %v): system=%+v cluster=%+v",
				i, queries[i].Device, queries[i].Time, want[i].Result, got[i].Result)
		}
	}
	// The single-query path routes through the same shard.
	res, err := c.Locate(queries[0].Device, queries[0].Time)
	if err != nil {
		t.Fatal(err)
	}
	if res != want[0].Result {
		t.Errorf("Locate = %+v, want %+v", res, want[0].Result)
	}
}

// TestBatchSplitMergePreservesOrder drives a batch through a 4-shard router
// and checks the answers come back in input order, each slot matching what
// the owning shard answers for that query alone.
func TestBatchSplitMergePreservesOrder(t *testing.T) {
	ds := buildDataset(t, 2, 7, 77)
	c, err := cluster.New(testConfig(ds.Building), cluster.Options{Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	ingestChunks(t, c, ds.Events)
	estimate(t, c)

	queries := sampleQueries(ds, 48)
	out := c.LocateBatch(queries, 3)
	if len(out) != len(queries) {
		t.Fatalf("batch returned %d results for %d queries", len(out), len(queries))
	}
	for i := range queries {
		if out[i].Query != queries[i] {
			t.Fatalf("slot %d carries query %+v, want %+v (input order lost)", i, out[i].Query, queries[i])
		}
		if out[i].Err != nil {
			t.Fatalf("query %d: %v", i, out[i].Err)
		}
		// The single-query path must agree with the batch slot: same shard,
		// same answer.
		single, err := c.Locate(queries[i].Device, queries[i].Time)
		if err != nil {
			t.Fatal(err)
		}
		if single != out[i].Result {
			t.Errorf("query %d: batch=%+v single=%+v", i, out[i].Result, single)
		}
	}
}

// TestBatchPerQueryErrors checks that per-query failures stay attached to
// their input slots across the shard split: a canceled context fails every
// query individually, with the Query field still identifying the slot.
func TestBatchPerQueryErrors(t *testing.T) {
	ds := buildDataset(t, 2, 5, 11)
	c, err := cluster.New(testConfig(ds.Building), cluster.Options{Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	ingestChunks(t, c, ds.Events)

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	queries := sampleQueries(ds, 16)
	out := c.LocateBatchContext(ctx, queries, 2)
	if len(out) != len(queries) {
		t.Fatalf("batch returned %d results for %d queries", len(out), len(queries))
	}
	for i := range out {
		if out[i].Err == nil {
			t.Errorf("query %d: expected a per-query error under a canceled context", i)
		}
		if out[i].Query != queries[i] {
			t.Errorf("slot %d carries query %+v, want %+v", i, out[i].Query, queries[i])
		}
	}
}

// TestClusterRecoveryEquivalence is the sharded variant of the WAL crash
// test: a 2-shard durable cluster abandoned without Close (the crash) must
// recover every acknowledged event from its per-shard logs and answer the
// same queries identically.
func TestClusterRecoveryEquivalence(t *testing.T) {
	ds := buildDataset(t, 2, 6, 42)
	dir := t.TempDir()
	popts := locater.PersistOptions{Fsync: true}
	copts := cluster.Options{Shards: 2}

	live, err := cluster.Open(dir, testConfig(ds.Building), popts, copts)
	if err != nil {
		t.Fatal(err)
	}
	ingestChunks(t, live, ds.Events)
	estimate(t, live)
	// Serialized batches: see TestSingleShardClusterIdenticalToSystem.
	queries := sampleQueries(ds, 40)
	liveRes := live.LocateBatch(queries, 1)

	// Each shard logs to its own subdirectory.
	for i := 0; i < 2; i++ {
		if _, err := os.Stat(cluster.ShardDir(dir, i)); err != nil {
			t.Fatalf("shard %d directory: %v", i, err)
		}
	}

	// Crash: no Close, no Checkpoint — recovery from the WAL tails alone.
	rec, err := cluster.Open(dir, testConfig(ds.Building), popts, copts)
	if err != nil {
		t.Fatal(err)
	}
	defer rec.Close()

	if got, want := rec.NumEvents(), live.NumEvents(); got != want {
		t.Fatalf("recovered %d events, want %d (zero acknowledged-event loss)", got, want)
	}
	estimate(t, rec)
	recRes := rec.LocateBatch(queries, 1)
	for i := range queries {
		if liveRes[i].Err != nil || recRes[i].Err != nil {
			t.Fatalf("query %d errored: live=%v recovered=%v", i, liveRes[i].Err, recRes[i].Err)
		}
		if liveRes[i].Result != recRes[i].Result {
			t.Errorf("query %d (%s, %v): live=%+v recovered=%+v",
				i, queries[i].Device, queries[i].Time, liveRes[i].Result, recRes[i].Result)
		}
	}

	// The merged persist counters reconcile with the per-shard sums.
	segs, last, durable, ok := rec.PersistStats()
	if !ok {
		t.Fatal("durable cluster reports ok=false")
	}
	var wantSegs int
	var wantLast, wantDurable uint64
	for _, si := range rec.ShardInfos() {
		if !si.Durable {
			t.Fatalf("shard %d reports Durable=false", si.Index)
		}
		wantSegs += si.Segments
		wantLast += si.LastLSN
		wantDurable += si.DurableLSN
	}
	if segs != wantSegs || last != wantLast || durable != wantDurable {
		t.Errorf("PersistStats = (%d, %d, %d), per-shard sums = (%d, %d, %d)",
			segs, last, durable, wantSegs, wantLast, wantDurable)
	}
}

// TestMergedStatsReconcile checks every merged counter against the shards
// summed directly: the coordinator must not invent or lose any accounting.
func TestMergedStatsReconcile(t *testing.T) {
	ds := buildDataset(t, 2, 6, 7)
	c, err := cluster.New(testConfig(ds.Building), cluster.Options{Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	ingestChunks(t, c, ds.Events)
	estimate(t, c)
	queries := sampleQueries(ds, 40)
	c.LocateBatch(queries, 4)
	c.LocateBatch(queries, 4) // second pass exercises the result caches

	var events, devices, served int
	for _, si := range c.ShardInfos() {
		events += si.Events
		devices += si.Devices
		served += si.Queries
	}
	if got := c.NumEvents(); got != events || events != len(ds.Events) {
		t.Errorf("NumEvents = %d, shard sum = %d, ingested = %d", got, events, len(ds.Events))
	}
	if got := c.NumDevices(); got != devices {
		t.Errorf("NumDevices = %d, shard sum = %d", got, devices)
	}
	if got := c.NumQueries(); got != served || served != 2*len(queries) {
		t.Errorf("NumQueries = %d, shard sum = %d, issued = %d", got, served, 2*len(queries))
	}

	var hits, misses int64
	var edges int
	var cold, cached int64
	for i := 0; i < c.NumShards(); i++ {
		cs := c.Shard(i).CacheStats()
		hits += cs.Results.Hits
		misses += cs.Results.Misses
		edges += cs.GraphEdges
		qs := c.Shard(i).QueryStats()
		cold += qs.Cold.Count
		cached += qs.Cached.Count
	}
	merged := c.CacheStats()
	if merged.Results.Hits != hits || merged.Results.Misses != misses {
		t.Errorf("merged result tier = %d hits/%d misses, shard sums = %d/%d",
			merged.Results.Hits, merged.Results.Misses, hits, misses)
	}
	if merged.GraphEdges != edges {
		t.Errorf("merged graph edges = %d, shard sum = %d", merged.GraphEdges, edges)
	}
	mq := c.QueryStats()
	if mq.Cold.Count != cold || mq.Cached.Count != cached {
		t.Errorf("merged query counts = %d cold/%d cached, shard sums = %d/%d",
			mq.Cold.Count, mq.Cached.Count, cold, cached)
	}
	if got, want := mq.Cold.Count+mq.Cached.Count, int64(2*len(queries)); got != want {
		t.Errorf("latency populations hold %d observations, served %d queries", got, want)
	}

	// In-memory cluster: no persist layer.
	if _, _, _, ok := c.PersistStats(); ok {
		t.Error("in-memory cluster reports PersistStats ok=true")
	}
}

// buildingScenario is a compact deterministic scenario over its own
// building, for ByBuilding routing tests (name-prefixed AP and room IDs
// keep two buildings' AP sets disjoint).
func buildingScenario(t testing.TB, name string, seed int64) *sim.Dataset {
	t.Helper()
	b, err := sim.GridBuilding(name, 24, 4, 8, 6)
	if err != nil {
		t.Fatal(err)
	}
	sc := sim.Scenario{
		Name:     name,
		Building: b,
		Profiles: []sim.Profile{{
			Name: "staff", Count: 5, HasOffice: true, BaseStay: 0.7,
			PresenceProb: 0.9,
			ArrivalMean:  9 * time.Hour, ArrivalStd: 30 * time.Minute,
			DepartureMean: 17 * time.Hour, DepartureStd: 30 * time.Minute,
			AttendProb: 0.8, MidDayExitProb: 0.4,
			EmitPeriod: 10 * time.Minute, EmitProb: 0.7,
			SilenceProb: 0.05,
		}},
	}
	ds, err := sim.Generate(sc.Config(simStart, 5, seed))
	if err != nil {
		t.Fatal(err)
	}
	return ds
}

// prefixDevices clones events under namespaced device IDs, so two
// independently generated datasets cannot collide on a device.
func prefixDevices(events []locater.Event, prefix string) []locater.Event {
	out := make([]locater.Event, len(events))
	for i, e := range events {
		e.Device = locater.DeviceID(prefix + string(e.Device))
		out[i] = e
	}
	return out
}

// TestBuildingModeRoutesByAccessPoint checks exact ByBuilding routing:
// events land on the shard owning their AP's building, and every query is
// answered identically to a per-building System (building sharding is not
// an approximation — co-located devices share a shard).
func TestBuildingModeRoutesByAccessPoint(t *testing.T) {
	dsA := buildingScenario(t, "alpha", 3)
	dsB := buildingScenario(t, "beta", 4)
	evA := prefixDevices(dsA.Events, "a:")
	evB := prefixDevices(dsB.Events, "b:")

	c, err := cluster.New(testConfig(dsA.Building), cluster.Options{
		ShardBy:   cluster.ByBuilding,
		Buildings: []*locater.Building{dsA.Building, dsB.Building},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	// Interleave the two buildings' streams to exercise the partition pass.
	mixed := make([]locater.Event, 0, len(evA)+len(evB))
	for i := 0; i < len(evA) || i < len(evB); i += 128 {
		for _, ev := range [][]locater.Event{evA, evB} {
			end := i + 128
			if end > len(ev) {
				end = len(ev)
			}
			if i < len(ev) {
				mixed = append(mixed, ev[i:end]...)
			}
		}
	}
	ingestChunks(t, c, mixed)
	estimate(t, c)

	if got := c.Shard(0).NumEvents(); got != len(evA) {
		t.Errorf("shard 0 holds %d events, want %d (all of building alpha)", got, len(evA))
	}
	if got := c.Shard(1).NumEvents(); got != len(evB) {
		t.Errorf("shard 1 holds %d events, want %d (all of building beta)", got, len(evB))
	}

	// Reference: one System per building over the same streams.
	sysA, err := locater.New(testConfig(dsA.Building))
	if err != nil {
		t.Fatal(err)
	}
	sysB, err := locater.New(testConfig(dsB.Building))
	if err != nil {
		t.Fatal(err)
	}
	ingestChunks(t, sysA, evA)
	ingestChunks(t, sysB, evB)
	estimate(t, sysA)
	estimate(t, sysB)

	var queries []locater.Query
	for i := 0; i < 10; i++ {
		qt := simStart.Add(time.Duration(24+i*7) * time.Hour)
		queries = append(queries,
			locater.Query{Device: locater.DeviceID("a:" + string(dsA.People[i%len(dsA.People)].Device)), Time: qt},
			locater.Query{Device: locater.DeviceID("b:" + string(dsB.People[i%len(dsB.People)].Device)), Time: qt})
	}
	// workers=2 gives each building's shard one serial worker, keeping the
	// comparison against the serial per-building systems deterministic.
	got := c.LocateBatch(queries, 2)
	for i, q := range queries {
		ref := sysA
		if q.Device[0] == 'b' {
			ref = sysB
		}
		want, err := ref.Locate(q.Device, q.Time)
		if err != nil || got[i].Err != nil {
			t.Fatalf("query %d errored: ref=%v cluster=%v", i, err, got[i].Err)
		}
		if got[i].Result != want {
			t.Errorf("query %d (%s): cluster=%+v per-building system=%+v", i, q.Device, got[i].Result, want)
		}
	}
}

// TestBuildingModeRecoveryRebuildsHomes crashes a durable ByBuilding
// cluster and checks the reopened router still sends a recovered device's
// queries to the shard that persisted it (the device→shard registry is
// rebuilt from the shards' recovered device sets, not lost with the
// process).
func TestBuildingModeRecoveryRebuildsHomes(t *testing.T) {
	dsA := buildingScenario(t, "alpha", 3)
	dsB := buildingScenario(t, "beta", 4)
	evA := prefixDevices(dsA.Events, "a:")
	evB := prefixDevices(dsB.Events, "b:")
	dir := t.TempDir()
	popts := locater.PersistOptions{Fsync: true}
	copts := cluster.Options{
		ShardBy:   cluster.ByBuilding,
		Buildings: []*locater.Building{dsA.Building, dsB.Building},
	}

	live, err := cluster.Open(dir, testConfig(dsA.Building), popts, copts)
	if err != nil {
		t.Fatal(err)
	}
	ingestChunks(t, live, evA)
	ingestChunks(t, live, evB)

	// Crash without Close; reopen and query a beta device.
	rec, err := cluster.Open(dir, testConfig(dsA.Building), popts, copts)
	if err != nil {
		t.Fatal(err)
	}
	defer rec.Close()
	dev := locater.DeviceID("b:" + string(dsB.People[0].Device))
	before := rec.Shard(1).NumQueries()
	if _, err := rec.Locate(dev, simStart.Add(30*time.Hour)); err != nil {
		t.Fatal(err)
	}
	if got := rec.Shard(1).NumQueries(); got != before+1 {
		t.Errorf("recovered beta device did not route to shard 1 (queries %d → %d)", before, got)
	}
}

// TestClusterQuarantineMerge exercises the Quarantiner surface on a
// sharded deployment: cleansing-rejected events land in per-shard rings,
// and the cluster presents them as one merged, newest-first quarantine with
// summed counters.
func TestClusterQuarantineMerge(t *testing.T) {
	ds := buildDataset(t, 1, 2, 21)
	cfg := testConfig(ds.Building)
	cfg.EnableCleansing = true
	cl, err := cluster.New(cfg, cluster.Options{Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	if !cl.CleansingEnabled() {
		t.Fatal("cluster with cleansing-enabled shards reports CleansingEnabled()=false")
	}
	ingestChunks(t, cl, ds.Events)

	// Append, per device, a fresh event followed by its exact duplicate:
	// the duplicate is quarantined on whichever shard owns the device.
	base := simStart.Add(72 * time.Hour)
	ap := ds.Events[0].AP
	nDev := len(ds.People)
	for i, p := range ds.People {
		e := locater.Event{Device: p.Device, Time: base.Add(time.Duration(i) * time.Minute), AP: ap}
		if err := cl.Ingest([]locater.Event{e, e}); err != nil {
			t.Fatal(err)
		}
	}

	st := cl.CleanseStats()
	if st.Duplicates != int64(nDev) || st.Quarantined != int64(nDev) {
		t.Fatalf("merged cleanse stats %+v, want %d duplicates quarantined", st, nDev)
	}
	if st.Ingested != int64(len(ds.Events)+2*nDev) {
		t.Fatalf("merged Ingested=%d, want %d", st.Ingested, len(ds.Events)+2*nDev)
	}

	// Per-shard rings must reconcile with the merged view, and more than
	// one shard must have contributed (devices hash across both).
	contributing := 0
	perShard := 0
	for i := 0; i < cl.NumShards(); i++ {
		n := len(cl.Shard(i).Quarantine(0))
		perShard += n
		if n > 0 {
			contributing++
		}
	}
	if contributing < 2 {
		t.Fatalf("expected quarantined events on ≥2 shards, got %d", contributing)
	}
	merged := cl.Quarantine(0)
	if len(merged) != perShard || len(merged) != nDev {
		t.Fatalf("merged quarantine has %d entries, per-shard sum %d, want %d", len(merged), perShard, nDev)
	}
	for i := 1; i < len(merged); i++ {
		if merged[i].At.After(merged[i-1].At) {
			t.Fatalf("merged quarantine not newest-first at %d: %v after %v", i, merged[i].At, merged[i-1].At)
		}
	}
	for _, ent := range merged {
		if ent.Rule != "duplicate" {
			t.Fatalf("unexpected rule %q in quarantine", ent.Rule)
		}
	}
	if got := cl.Quarantine(3); len(got) != 3 {
		t.Fatalf("Quarantine(3) returned %d entries", len(got))
	}
}
