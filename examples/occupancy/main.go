// Command occupancy demonstrates the building-analytics application that
// motivates LOCATER in the paper's introduction: maintaining an accurate
// assessment of occupancy of different parts of a building for HVAC control
// and space planning.
//
// It simulates two weeks of an office building, then uses LOCATER to
// estimate per-region and per-room occupancy at a set of snapshot times on
// the last day, comparing the estimates against the simulator's ground
// truth.
package main

import (
	"fmt"
	"log"
	"sort"
	"time"

	"locater"
	"locater/internal/sim"
	"locater/internal/space"
)

func main() {
	scenario, err := sim.Office(2)
	if err != nil {
		log.Fatalf("building office scenario: %v", err)
	}
	start := time.Date(2026, 3, 2, 0, 0, 0, 0, time.UTC)
	const days = 14
	ds, err := sim.Generate(scenario.Config(start, days, 7))
	if err != nil {
		log.Fatalf("generating workload: %v", err)
	}
	fmt.Printf("office simulation: %d people, %d connectivity events over %d days\n",
		len(ds.People), len(ds.Events), days)

	sys, err := locater.New(locater.Config{
		Building:           ds.Building,
		Variant:            locater.DependentVariant,
		EnableCache:        true,
		HistoryDays:        10,
		PromotionsPerRound: 8,
	})
	if err != nil {
		log.Fatalf("assembling LOCATER: %v", err)
	}
	if err := sys.Ingest(ds.Events); err != nil {
		log.Fatalf("ingest: %v", err)
	}
	sys.EstimateDeltas(0.9, 2*time.Minute, 15*time.Minute)

	lastDay := start.AddDate(0, 0, days-1)
	snapshots := []time.Duration{9 * time.Hour, 11 * time.Hour, 13 * time.Hour, 15 * time.Hour, 17 * time.Hour}

	fmt.Println("\nhourly occupancy estimate vs ground truth (whole building):")
	fmt.Println("time   LOCATER  truth  |err|")
	for _, offset := range snapshots {
		tq := lastDay.Add(offset)
		estimated := 0
		for _, p := range ds.People {
			res, err := sys.Locate(p.Device, tq)
			if err != nil {
				log.Fatalf("locating %s: %v", p.Device, err)
			}
			if !res.Outside {
				estimated++
			}
		}
		truth := 0
		for _, p := range ds.People {
			if seg, ok := ds.Truth.At(p.Device, tq); ok && !seg.Outside {
				truth++
			}
		}
		diff := estimated - truth
		if diff < 0 {
			diff = -diff
		}
		fmt.Printf("%s  %7d  %5d  %5d\n", tq.Format("15:04"), estimated, truth, diff)
	}

	// Region-level heat map at 11:00 — the granularity HVAC zoning uses.
	tq := lastDay.Add(11 * time.Hour)
	regionCount := map[locater.RegionID]int{}
	roomCount := map[locater.RoomID]int{}
	for _, p := range ds.People {
		res, err := sys.Locate(p.Device, tq)
		if err != nil {
			log.Fatal(err)
		}
		if !res.Outside {
			regionCount[res.Region]++
			roomCount[res.Room]++
		}
	}
	fmt.Printf("\nregion occupancy at %s (top 5):\n", tq.Format("15:04"))
	printTop(regionCount, 5)

	truthOcc := ds.Truth.OccupancyAt(tq)
	fmt.Println("\nbusiest rooms at 11:00 — LOCATER vs truth:")
	fmt.Printf("  LOCATER: %s\n", topRooms(roomCount, 3))
	fmt.Printf("  truth:   %s\n", topRoomsTruth(truthOcc, 3))
}

func printTop(counts map[locater.RegionID]int, n int) {
	type kv struct {
		k locater.RegionID
		v int
	}
	var all []kv
	for k, v := range counts {
		all = append(all, kv{k, v})
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].v != all[j].v {
			return all[i].v > all[j].v
		}
		return all[i].k < all[j].k
	})
	if len(all) > n {
		all = all[:n]
	}
	for _, e := range all {
		fmt.Printf("  %-14s %d occupants\n", e.k, e.v)
	}
}

func topRooms(counts map[locater.RoomID]int, n int) string {
	type kv struct {
		k locater.RoomID
		v int
	}
	var all []kv
	for k, v := range counts {
		all = append(all, kv{k, v})
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].v != all[j].v {
			return all[i].v > all[j].v
		}
		return all[i].k < all[j].k
	})
	if len(all) > n {
		all = all[:n]
	}
	s := ""
	for i, e := range all {
		if i > 0 {
			s += ", "
		}
		s += fmt.Sprintf("%s(%d)", e.k, e.v)
	}
	return s
}

func topRoomsTruth(counts map[space.RoomID]int, n int) string {
	conv := map[locater.RoomID]int{}
	for k, v := range counts {
		conv[k] = v
	}
	return topRooms(conv, n)
}
