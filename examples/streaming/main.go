// Command streaming demonstrates LOCATER's online operation: connectivity
// events arrive as a real-time stream (the paper's ingestion engine), and
// location queries interleave with ingestion — the mode a live deployment
// (e.g. the TIPPERS testbed) runs in.
//
// The example replays a simulated day event-by-event through IngestOne,
// issuing a "where is everyone" query sweep every simulated two hours, and
// reports how answer quality improves as the day's context accumulates.
package main

import (
	"fmt"
	"log"
	"time"

	"locater"
	"locater/internal/sim"
)

func main() {
	scenario, err := sim.DBH(3)
	if err != nil {
		log.Fatalf("building scenario: %v", err)
	}
	start := time.Date(2026, 3, 2, 0, 0, 0, 0, time.UTC)
	const days = 8
	ds, err := sim.Generate(scenario.Config(start, days, 23))
	if err != nil {
		log.Fatalf("generating workload: %v", err)
	}

	sys, err := locater.New(locater.Config{
		Building:           ds.Building,
		Variant:            locater.IndependentVariant, // cheapest for live use
		EnableCache:        true,
		HistoryDays:        7,
		PromotionsPerRound: 8,
	})
	if err != nil {
		log.Fatalf("assembling LOCATER: %v", err)
	}

	// Pre-load the first 7 days as history (batch), then stream the last.
	lastDay := start.AddDate(0, 0, days-1)
	var history, live []locater.Event
	for _, e := range ds.Events {
		if e.Time.Before(lastDay) {
			history = append(history, e)
		} else {
			live = append(live, e)
		}
	}
	if err := sys.Ingest(history); err != nil {
		log.Fatalf("ingesting history: %v", err)
	}
	sys.EstimateDeltas(0.9, 2*time.Minute, 15*time.Minute)
	fmt.Printf("preloaded %d historical events; streaming %d live events for %s\n",
		len(history), len(live), lastDay.Format("2006-01-02"))

	checkpoints := []time.Duration{9 * time.Hour, 11 * time.Hour, 13 * time.Hour, 15 * time.Hour, 17 * time.Hour}
	ci := 0
	ingested := 0
	fmt.Println("\ntime   events  inside(est)  inside(truth)  room-accuracy")
	for _, e := range live {
		for ci < len(checkpoints) && !e.Time.Before(lastDay.Add(checkpoints[ci])) {
			report(sys, ds, lastDay.Add(checkpoints[ci]), ingested)
			ci++
		}
		if err := sys.IngestOne(e); err != nil {
			log.Fatalf("streaming ingest: %v", err)
		}
		ingested++
	}
	for ; ci < len(checkpoints); ci++ {
		report(sys, ds, lastDay.Add(checkpoints[ci]), ingested)
	}

	cs := sys.CacheStats()
	fmt.Printf("\nfinal state: %d events, %d affinity edges, affinity cache %d hits / %d misses (%d invalidations)\n",
		sys.NumEvents(), cs.GraphEdges, cs.Affinity.Hits, cs.Affinity.Misses, cs.Affinity.Invalidations)
}

// report sweeps every known device at tq and compares against the oracle.
func report(sys *locater.System, ds *sim.Dataset, tq time.Time, ingested int) {
	insideEst, insideTruth, roomHits, roomTotal := 0, 0, 0, 0
	for _, p := range ds.People {
		res, err := sys.Locate(p.Device, tq)
		if err != nil {
			log.Fatalf("query at %v: %v", tq, err)
		}
		seg, ok := ds.Truth.At(p.Device, tq)
		if !ok {
			continue
		}
		if !res.Outside {
			insideEst++
		}
		if !seg.Outside {
			insideTruth++
			if !res.Outside {
				roomTotal++
				if res.Room == seg.Room {
					roomHits++
				}
			}
		}
	}
	acc := "n/a"
	if roomTotal > 0 {
		acc = fmt.Sprintf("%3.0f%%", 100*float64(roomHits)/float64(roomTotal))
	}
	fmt.Printf("%s  %6d  %11d  %13d  %s\n",
		tq.Format("15:04"), ingested, insideEst, insideTruth, acc)
}
