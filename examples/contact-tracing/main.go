// Command contact-tracing demonstrates the exposure-analysis application
// from the paper's introduction: given an individual who reports an
// infection, use cleaned room-level localization to find who shared rooms
// with them, for how long, and where — without any app installation or user
// cooperation, purely from WiFi association logs.
package main

import (
	"fmt"
	"log"
	"sort"
	"time"

	"locater"
	"locater/internal/sim"
)

// exposure accumulates co-location time between the index case and another
// device.
type exposure struct {
	device locater.DeviceID
	total  time.Duration
	rooms  map[locater.RoomID]time.Duration
}

func main() {
	scenario, err := sim.University(2)
	if err != nil {
		log.Fatalf("building university scenario: %v", err)
	}
	start := time.Date(2026, 3, 2, 0, 0, 0, 0, time.UTC)
	const days = 14
	ds, err := sim.Generate(scenario.Config(start, days, 11))
	if err != nil {
		log.Fatalf("generating workload: %v", err)
	}

	sys, err := locater.New(locater.Config{
		Building:           ds.Building,
		Variant:            locater.DependentVariant,
		EnableCache:        true,
		HistoryDays:        10,
		PromotionsPerRound: 8,
	})
	if err != nil {
		log.Fatalf("assembling LOCATER: %v", err)
	}
	if err := sys.Ingest(ds.Events); err != nil {
		log.Fatalf("ingest: %v", err)
	}
	sys.EstimateDeltas(0.9, 2*time.Minute, 15*time.Minute)

	// The index case: an undergraduate — they attend classes with many
	// others, so true co-location is frequent.
	var indexCase sim.Person
	for _, p := range ds.People {
		if p.Profile == "Undergraduate" {
			indexCase = p
			break
		}
	}
	fmt.Printf("index case: %s (%s), tracing the last 2 days of a %d-day trace\n",
		indexCase.Device, indexCase.Profile, days)

	// Sweep the last two days in 15-minute steps; a contact is any device
	// LOCATER places in the same room at the same step.
	const step = 15 * time.Minute
	traceStart := start.AddDate(0, 0, days-2).Add(7 * time.Hour)
	traceEnd := start.AddDate(0, 0, days-1).Add(21 * time.Hour)

	contacts := map[locater.DeviceID]*exposure{}
	for tq := traceStart; tq.Before(traceEnd); tq = tq.Add(step) {
		if h := tq.Hour(); h < 7 || h >= 21 {
			continue
		}
		idxRes, err := sys.Locate(indexCase.Device, tq)
		if err != nil {
			log.Fatalf("locating index case: %v", err)
		}
		if idxRes.Outside {
			continue
		}
		for _, p := range ds.People {
			if p.Device == indexCase.Device {
				continue
			}
			res, err := sys.Locate(p.Device, tq)
			if err != nil {
				log.Fatalf("locating %s: %v", p.Device, err)
			}
			if res.Outside || res.Room != idxRes.Room {
				continue
			}
			c := contacts[p.Device]
			if c == nil {
				c = &exposure{device: p.Device, rooms: map[locater.RoomID]time.Duration{}}
				contacts[p.Device] = c
			}
			c.total += step
			c.rooms[res.Room] += step
		}
	}

	// Rank by cumulative exposure; report contacts above 30 minutes.
	var ranked []*exposure
	for _, c := range contacts {
		if c.total >= 30*time.Minute {
			ranked = append(ranked, c)
		}
	}
	sort.Slice(ranked, func(i, j int) bool {
		if ranked[i].total != ranked[j].total {
			return ranked[i].total > ranked[j].total
		}
		return ranked[i].device < ranked[j].device
	})

	fmt.Printf("\n%d devices with ≥30 min of estimated co-location:\n", len(ranked))
	profiles := map[locater.DeviceID]string{}
	for _, p := range ds.People {
		profiles[p.Device] = p.Profile
	}
	shown := ranked
	if len(shown) > 10 {
		shown = shown[:10]
	}
	for _, c := range shown {
		fmt.Printf("  %-12s %-14s exposure %-6v rooms: %s\n",
			c.device, profiles[c.device], c.total, summarizeRooms(c.rooms))
	}

	// Validate against ground truth: how many reported contacts truly
	// shared a room with the index case during the window?
	truePositives := 0
	for _, c := range ranked {
		if trulyCoLocated(ds, indexCase.Device, c.device, traceStart, traceEnd, step) {
			truePositives++
		}
	}
	if len(ranked) > 0 {
		fmt.Printf("\nground-truth check: %d/%d reported contacts really shared a room (precision %.0f%%)\n",
			truePositives, len(ranked), 100*float64(truePositives)/float64(len(ranked)))
	} else {
		fmt.Println("\nno contacts above the exposure threshold")
	}
}

func summarizeRooms(rooms map[locater.RoomID]time.Duration) string {
	type kv struct {
		r locater.RoomID
		d time.Duration
	}
	var all []kv
	for r, d := range rooms {
		all = append(all, kv{r, d})
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].d != all[j].d {
			return all[i].d > all[j].d
		}
		return all[i].r < all[j].r
	})
	if len(all) > 2 {
		all = all[:2]
	}
	s := ""
	for i, e := range all {
		if i > 0 {
			s += ", "
		}
		s += fmt.Sprintf("%s (%v)", e.r, e.d)
	}
	return s
}

// trulyCoLocated consults the oracle for any same-room step in the window.
func trulyCoLocated(ds *sim.Dataset, a, b locater.DeviceID, from, to time.Time, step time.Duration) bool {
	for tq := from; tq.Before(to); tq = tq.Add(step) {
		sa, okA := ds.Truth.At(a, tq)
		sb, okB := ds.Truth.At(b, tq)
		if okA && okB && !sa.Outside && !sb.Outside && sa.Room == sb.Room {
			return true
		}
	}
	return false
}
