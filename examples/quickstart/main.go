// Command quickstart demonstrates LOCATER end to end on the paper's
// motivating example (Figure 1): a small office floor with four WiFi access
// points, a handful of devices, and queries that exercise both cleaning
// stages — a validity hit, a gap repair (missing-value cleaning), and a
// room disambiguation.
package main

import (
	"fmt"
	"log"
	"time"

	"locater"
	"locater/internal/sim"
	"locater/internal/space"
)

func main() {
	// A building like Figure 1(a): 40 rooms, 4 APs with overlapping
	// coverage, every 8th room public (conference rooms, lounges).
	building, err := sim.GridBuilding("quick", 40, 4, 14, 8)
	if err != nil {
		log.Fatalf("building space model: %v", err)
	}

	// Simulate two weeks of movement for a small population so LOCATER
	// has history to learn gap patterns and device affinities from.
	scenario := sim.Scenario{
		Name:     "quickstart",
		Building: building,
		Profiles: []sim.Profile{{
			Name: "staff", Count: 12, HasOffice: true, BaseStay: 0.8,
			PresenceProb: 0.9,
			ArrivalMean:  9 * time.Hour, ArrivalStd: 30 * time.Minute,
			DepartureMean: 17 * time.Hour, DepartureStd: 45 * time.Minute,
			AttendProb: 0.8, MidDayExitProb: 0.4,
			EmitPeriod: 8 * time.Minute, EmitProb: 0.75,
		}},
		Events: []sim.EventTemplate{{
			Name: "weekly-sync", Room: firstPublic(building),
			Start: 11 * time.Hour, Duration: time.Hour,
			Days:     []time.Weekday{time.Tuesday, time.Thursday},
			Profiles: map[string]float64{"staff": 0.8},
			Capacity: 10,
		}},
	}
	start := time.Date(2026, 3, 2, 0, 0, 0, 0, time.UTC) // a Monday
	ds, err := sim.Generate(scenario.Config(start, 14, 42))
	if err != nil {
		log.Fatalf("generating workload: %v", err)
	}
	fmt.Printf("simulated %d connectivity events for %d devices over 14 days\n",
		len(ds.Events), len(ds.People))

	// Assemble LOCATER: D-LOCATER with caching, the paper's defaults.
	sys, err := locater.New(locater.Config{
		Building:    building,
		Variant:     locater.DependentVariant,
		EnableCache: true,
	})
	if err != nil {
		log.Fatalf("assembling LOCATER: %v", err)
	}
	if err := sys.Ingest(ds.Events); err != nil {
		log.Fatalf("ingesting events: %v", err)
	}
	sys.EstimateDeltas(0.9, 2*time.Minute, 15*time.Minute)

	// Query three interesting moments for the first device on the last
	// simulated day: mid-morning (usually a validity hit or short-gap
	// repair), lunch (often outside), and late evening (outside).
	dev := ds.People[0].Device
	fmt.Printf("\ndevice %s (preferred room %s):\n", dev, ds.People[0].BaseRoom)
	day := start.AddDate(0, 0, 10)
	for _, q := range []struct {
		label string
		t     time.Time
	}{
		{"10:30", day.Add(10*time.Hour + 30*time.Minute)},
		{"12:45", day.Add(12*time.Hour + 45*time.Minute)},
		{"23:00", day.Add(23 * time.Hour)},
	} {
		res, err := sys.Locate(dev, q.t)
		if err != nil {
			log.Fatalf("query at %s: %v", q.label, err)
		}
		truth, _ := ds.Truth.At(dev, q.t)
		fmt.Printf("  %s → %-28s truth: %s\n", q.label, describe(res), describeTruth(truth))
	}

	cs := sys.CacheStats()
	fmt.Printf("\ncaching engine: %d affinity-graph edges, affinity cache %d hits / %d misses, result cache %d hits / %d misses\n",
		cs.GraphEdges, cs.Affinity.Hits, cs.Affinity.Misses, cs.Results.Hits, cs.Results.Misses)
}

func describe(r locater.Result) string {
	if r.Outside {
		return "outside the building"
	}
	kind := "validity"
	if r.Repaired {
		kind = "repaired"
	}
	return fmt.Sprintf("room %s (%s, p=%.2f)", r.Room, kind, r.RoomProbability)
}

func describeTruth(t sim.TruthSegment) string {
	if t.Outside {
		return "outside"
	}
	return string(t.Room)
}

func firstPublic(b *space.Building) space.RoomID {
	for _, r := range b.Rooms() {
		if b.IsPublic(r) {
			return r
		}
	}
	return b.Rooms()[0]
}
