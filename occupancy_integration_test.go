package locater_test

import (
	"reflect"
	"testing"
	"time"

	"locater"
)

// TestOccupancyIndexEquivalentAfterRecovery: the occupancy index is derived
// state, so after a crash (no Close, no Checkpoint) the recovered system's
// WAL replay must rebuild it to answer neighbor-discovery lookups exactly
// like the live system — and exactly like a full-scan store with the index
// disabled.
func TestOccupancyIndexEquivalentAfterRecovery(t *testing.T) {
	ds := buildDataset(t, 3)
	dir := t.TempDir()

	live := openSystem(t, ds, dir, locater.PersistOptions{Fsync: true})
	// Ingest the second half first so many logs go through the
	// out-of-order (lazy re-sort) path on both the live and replay sides.
	half := len(ds.Events) / 2
	if err := live.Ingest(ds.Events[half:]); err != nil {
		t.Fatal(err)
	}
	if err := live.Ingest(ds.Events[:half]); err != nil {
		t.Fatal(err)
	}

	liveOcc := live.CacheStats().Occupancy
	if !liveOcc.Enabled || liveOcc.Entries == 0 {
		t.Fatalf("live occupancy index not populated: %+v", liveOcc)
	}

	// Crash: recovery must come from the WAL alone.
	recovered := openSystem(t, ds, dir, locater.PersistOptions{Fsync: true})
	defer recovered.Close()

	recOcc := recovered.CacheStats().Occupancy
	if !recOcc.Enabled || recOcc.Entries != liveOcc.Entries || recOcc.Buckets != liveOcc.Buckets {
		t.Fatalf("recovered index shape %+v, want %+v", recOcc, liveOcc)
	}

	liveStore, recStore := live.StoreForTest(), recovered.StoreForTest()
	scan := liveStore.Clone()
	scan.ConfigureOccupancy(0, false)
	aps := ds.Building.AccessPoints()
	for i := 0; i < 24; i++ {
		start := simStart.Add(time.Duration(i*3) * time.Hour)
		end := start.Add(90 * time.Minute)
		want := liveStore.ActiveDevices(start, end)
		if got := recStore.ActiveDevices(start, end); !reflect.DeepEqual(got, want) {
			t.Fatalf("window %d: recovered ActiveDevices = %v, want %v", i, got, want)
		}
		if got := scan.ActiveDevices(start, end); !reflect.DeepEqual(got, want) {
			t.Fatalf("window %d: index diverged from full scan: %v vs %v", i, got, want)
		}
		scope := aps[:1+i%len(aps)]
		wantAt := liveStore.ActiveDevicesAt(scope, start, end)
		if got := recStore.ActiveDevicesAt(scope, start, end); !reflect.DeepEqual(got, wantAt) {
			t.Fatalf("window %d: recovered scoped lookup = %v, want %v", i, got, wantAt)
		}
	}
}

// TestOccupancyConfigKnobs: Config.OccupancyBucket and
// Config.DisableOccupancyIndex reach the store and surface through
// System.CacheStats.
func TestOccupancyConfigKnobs(t *testing.T) {
	ds := buildDataset(t, 2)

	custom := newSystem(t, ds, locater.Config{
		Building:        ds.Building,
		OccupancyBucket: 5 * time.Minute,
	})
	occ := custom.CacheStats().Occupancy
	if !occ.Enabled || occ.Bucket != 5*time.Minute {
		t.Errorf("custom bucket not applied: %+v", occ)
	}
	if occ.Entries == 0 || occ.Buckets == 0 {
		t.Errorf("index empty after ingest: %+v", occ)
	}

	disabled := newSystem(t, ds, locater.Config{
		Building:              ds.Building,
		DisableOccupancyIndex: true,
	})
	occ = disabled.CacheStats().Occupancy
	if occ.Enabled || occ.Entries != 0 {
		t.Fatalf("DisableOccupancyIndex ignored: %+v", occ)
	}
	// A query still works — discovery just takes the full-scan path, which
	// the stats report as a fallback.
	q := sampleQueries(ds, 1)[0]
	if _, err := disabled.Locate(q.Device, q.Time); err != nil {
		t.Fatal(err)
	}
	if occ = disabled.CacheStats().Occupancy; occ.FallbackScans == 0 {
		t.Errorf("fallback scan not counted: %+v", occ)
	}

	// Default path: index on, lookups counted once queries flow.
	def := newSystem(t, ds, locater.Config{Building: ds.Building})
	if _, err := def.Locate(q.Device, q.Time); err != nil {
		t.Fatal(err)
	}
	occ = def.CacheStats().Occupancy
	if !occ.Enabled || occ.Lookups == 0 || occ.FallbackScans != 0 {
		t.Errorf("default index stats: %+v", occ)
	}
}
