package locater_test

import (
	"testing"
	"time"

	"locater"
)

// TestCleansingGatesIngest drives the cleansing stage through the System
// write path: dirty events never reach the store, counters and the
// quarantine reconcile, and with cleansing off the same batch is stored
// verbatim (the byte-identity default).
func TestCleansingGatesIngest(t *testing.T) {
	ds := buildDataset(t, 3)
	on := newEmptySystem(t, ds, locater.Config{EnableCache: true, EnableCleansing: true})
	off := newEmptySystem(t, ds, locater.Config{EnableCache: true})
	if !on.CleansingEnabled() || off.CleansingEnabled() {
		t.Fatal("CleansingEnabled does not reflect configuration")
	}

	dev := ds.People[0].Device
	ap := ds.Events[0].AP
	batch := []locater.Event{
		{Device: dev, Time: simStart, AP: ap},
		{Device: dev, Time: simStart, AP: ap},                       // exact duplicate
		{Device: dev, Time: simStart.Add(5 * time.Second), AP: ap},  // re-association
		{Device: dev, Time: simStart.Add(20 * time.Minute), AP: ap}, // kept
	}
	if err := on.Ingest(batch); err != nil {
		t.Fatal(err)
	}
	if err := off.Ingest(batch); err != nil {
		t.Fatal(err)
	}
	if got := on.NumEvents(); got != 2 {
		t.Errorf("cleansing on: stored %d events, want 2", got)
	}
	if got := off.NumEvents(); got != len(batch) {
		t.Errorf("cleansing off: stored %d events, want %d verbatim", got, len(batch))
	}

	st := on.CleanseStats()
	if st.Ingested != 4 || st.Kept != 2 || st.Duplicates != 1 || st.Reassociations != 1 {
		t.Errorf("cleanse stats = %+v, want 4 ingested / 2 kept / 1 dup / 1 reassoc", st)
	}
	q := on.Quarantine(0)
	if len(q) != 2 {
		t.Fatalf("quarantine holds %d entries, want 2", len(q))
	}
	if off.CleanseStats() != (locater.CleanseStats{}) || len(off.Quarantine(0)) != 0 {
		t.Error("cleansing-off system has non-empty cleanse state")
	}

	// A fully-rejected batch is not an error — just nothing to store.
	if err := on.Ingest([]locater.Event{{Device: dev, Time: simStart.Add(20 * time.Minute), AP: ap}}); err != nil {
		t.Fatal(err)
	}
	if got := on.NumEvents(); got != 2 {
		t.Errorf("duplicate-only batch changed the store: %d events", got)
	}

	// IngestOne goes through the same stage.
	if err := on.IngestOne(locater.Event{Device: dev, Time: simStart.Add(40 * time.Minute), AP: ap}); err != nil {
		t.Fatal(err)
	}
	if err := on.IngestOne(locater.Event{Device: dev, Time: simStart.Add(40 * time.Minute), AP: ap}); err != nil {
		t.Fatal(err)
	}
	if got := on.NumEvents(); got != 3 {
		t.Errorf("IngestOne path: stored %d events, want 3", got)
	}
}

// TestCleansingSurvivesRecovery checks the cleanse-before-WAL invariant:
// the log holds only cleansed events, so recovery replays without
// re-cleansing, and the recovered cleanser re-seeds its per-device state
// from the store (a post-recovery duplicate is still caught).
func TestCleansingSurvivesRecovery(t *testing.T) {
	ds := buildDataset(t, 3)
	dir := t.TempDir()
	cfg := locater.Config{
		Building:           ds.Building,
		EnableCache:        true,
		EnableCleansing:    true,
		HistoryDays:        14,
		PromotionsPerRound: 8,
		MaxTrainingGaps:    100,
	}
	popts := locater.PersistOptions{Fsync: true}
	live, err := locater.Open(dir, cfg, popts)
	if err != nil {
		t.Fatal(err)
	}
	dev := ds.People[0].Device
	ap := ds.Events[0].AP
	e := locater.Event{Device: dev, Time: simStart, AP: ap}
	if err := live.Ingest([]locater.Event{e, e}); err != nil {
		t.Fatal(err)
	}
	stored := live.NumEvents()
	if stored != 1 {
		t.Fatalf("stored %d events, want the duplicate dropped pre-WAL", stored)
	}

	// Crash (no Close), recover: the WAL replay must not need cleansing.
	rec, err := locater.Open(dir, cfg, popts)
	if err != nil {
		t.Fatal(err)
	}
	defer rec.Close()
	if got := rec.NumEvents(); got != stored {
		t.Fatalf("recovered %d events, want %d", got, stored)
	}
	// The recovered cleanser re-seeds from the store: replaying the same
	// event is caught as a duplicate even though the in-memory rule state
	// died with the crash.
	if err := rec.Ingest([]locater.Event{e}); err != nil {
		t.Fatal(err)
	}
	if got := rec.NumEvents(); got != stored {
		t.Errorf("post-recovery duplicate reached the store (%d events)", got)
	}
	if st := rec.CleanseStats(); st.Duplicates != 1 {
		t.Errorf("post-recovery cleanse stats = %+v, want the duplicate counted", st)
	}
}
