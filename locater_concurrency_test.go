// Concurrency tests for the sharded query engine. These are written to be
// meaningful under the race detector (`go test -race ./...`, run in CI):
// they drive Locate, LocateBatch, Ingest, EstimateDeltas, AddRoomLabel, and
// preferred-room registration from many goroutines at once across many
// devices, which exercises every lock added for the concurrent engine —
// the coarse model shards, the store's shared read path, the affinity
// graph, the label store, and the building's preference maps.
package locater_test

import (
	"sync"
	"testing"
	"time"

	"locater"
	"locater/internal/eval"
)

// sampleBatch converts sampled evaluation queries to batch queries.
func sampleBatch(queries []eval.Query) []locater.Query {
	out := make([]locater.Query, len(queries))
	for i, q := range queries {
		out[i] = locater.Query{Device: q.Device, Time: q.Time}
	}
	return out
}

func TestConcurrentLocateIngestEstimate(t *testing.T) {
	ds := buildDataset(t, 14)
	sys := newSystem(t, ds, locater.Config{Variant: locater.DependentVariant, EnableCache: true})

	queries, err := eval.SampleQueries(ds, eval.WorkloadOptions{
		NumQueries: 48, Seed: 11,
		From: simStart.AddDate(0, 0, 10), To: simStart.AddDate(0, 0, 14),
		DaytimeOnly: true, InsideBias: 0.5,
	})
	if err != nil {
		t.Fatal(err)
	}

	const queryWorkers = 4
	var wg sync.WaitGroup

	// Query workers: every worker walks the whole workload, offset so that
	// different workers hit different devices (and model shards) at once.
	for w := 0; w < queryWorkers; w++ {
		wg.Add(1)
		go func(offset int) {
			defer wg.Done()
			for i := range queries {
				q := queries[(i+offset)%len(queries)]
				if _, err := sys.Locate(q.Device, q.Time); err != nil {
					t.Errorf("concurrent Locate(%s, %v): %v", q.Device, q.Time, err)
					return
				}
			}
		}(w * len(queries) / queryWorkers)
	}

	// Ingest worker: streams new events for every device while queries run,
	// triggering per-shard model invalidation.
	wg.Add(1)
	go func() {
		defer wg.Done()
		base := simStart.AddDate(0, 0, 14)
		for i := 0; i < 20; i++ {
			var events []locater.Event
			for _, p := range ds.People {
				events = append(events, locater.Event{
					Device: p.Device,
					Time:   base.Add(time.Duration(i) * time.Minute),
					AP:     ds.Building.AccessPoints()[i%ds.Building.NumAccessPoints()],
				})
			}
			if err := sys.Ingest(events); err != nil {
				t.Errorf("concurrent Ingest: %v", err)
				return
			}
		}
	}()

	// Delta re-estimation: invalidates every model shard plus the
	// population model while queries are in flight.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 5; i++ {
			sys.EstimateDeltas(0.9, 2*time.Minute, 15*time.Minute)
		}
	}()

	// Metadata writers: crowd-sourced labels and preferred-room updates.
	wg.Add(1)
	go func() {
		defer wg.Done()
		rooms := ds.Building.Rooms()
		for i := 0; i < 30; i++ {
			p := ds.People[i%len(ds.People)]
			if err := sys.AddRoomLabel(p.Device, rooms[i%len(rooms)], simStart.Add(time.Duration(i)*time.Hour)); err != nil {
				t.Errorf("concurrent AddRoomLabel: %v", err)
				return
			}
			if err := sys.SetTimePreferredRooms(p.Device, []locater.TimePreference{
				{StartMinute: 11 * 60, EndMinute: 13 * 60, Rooms: []locater.RoomID{rooms[i%len(rooms)]}},
			}); err != nil {
				t.Errorf("concurrent SetTimePreferredRooms: %v", err)
				return
			}
		}
	}()

	// Stats readers.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 50; i++ {
			sys.NumQueries()
			sys.NumEvents()
			sys.NumDevices()
			sys.CacheStats()
		}
	}()

	wg.Wait()

	want := queryWorkers * len(queries)
	if got := sys.NumQueries(); got != want {
		t.Errorf("NumQueries = %d, want %d", got, want)
	}
}

// TestLocateBatchMatchesSerial checks that LocateBatch returns, in input
// order, exactly the answers serial Locate gives on an identically
// configured system. Caching is off so answers do not depend on the order
// in which queries warm the affinity graph.
func TestLocateBatchMatchesSerial(t *testing.T) {
	ds := buildDataset(t, 14)
	serial := newSystem(t, ds, locater.Config{})
	parallel := newSystem(t, ds, locater.Config{})

	queries, err := eval.SampleQueries(ds, eval.WorkloadOptions{
		NumQueries: 40, Seed: 13,
		From: simStart.AddDate(0, 0, 10), To: simStart.AddDate(0, 0, 14),
		DaytimeOnly: true, InsideBias: 0.5,
	})
	if err != nil {
		t.Fatal(err)
	}
	batch := sampleBatch(queries)

	want := make([]locater.Result, len(batch))
	for i, q := range batch {
		res, err := serial.Locate(q.Device, q.Time)
		if err != nil {
			t.Fatalf("serial Locate(%s, %v): %v", q.Device, q.Time, err)
		}
		want[i] = res
	}

	got := parallel.LocateBatch(batch, 8)
	if len(got) != len(batch) {
		t.Fatalf("LocateBatch returned %d results for %d queries", len(got), len(batch))
	}
	for i, br := range got {
		if br.Query != batch[i] {
			t.Fatalf("result %d carries query %+v, want %+v (order not preserved)", i, br.Query, batch[i])
		}
		if br.Err != nil {
			t.Fatalf("batch query %d failed: %v", i, br.Err)
		}
		w := want[i]
		if br.Result.Outside != w.Outside || br.Result.Region != w.Region || br.Result.Room != w.Room {
			t.Errorf("result %d = {outside %v region %s room %s}, serial said {outside %v region %s room %s}",
				i, br.Result.Outside, br.Result.Region, br.Result.Room, w.Outside, w.Region, w.Room)
		}
	}
	if parallel.NumQueries() != len(batch) {
		t.Errorf("NumQueries = %d, want %d", parallel.NumQueries(), len(batch))
	}
}

// TestLocateBatchErrorPropagation checks that a query that fails (its
// validity event references an AP missing from the building metadata)
// reports its error in place without failing the rest of the batch.
func TestLocateBatchErrorPropagation(t *testing.T) {
	ds := buildDataset(t, 14)
	sys := newSystem(t, ds, locater.Config{})

	good := ds.People[0].Device
	goodTime := simStart.AddDate(0, 0, 12).Add(11 * time.Hour)

	// A device whose only event references an AP the building does not
	// know: a validity-hit query for it must error.
	bad := locater.DeviceID("bad:device")
	badTime := simStart.AddDate(0, 0, 12).Add(11 * time.Hour)
	if err := sys.Ingest([]locater.Event{{Device: bad, Time: badTime, AP: "no-such-ap"}}); err != nil {
		t.Fatal(err)
	}

	batch := []locater.Query{
		{Device: good, Time: goodTime},
		{Device: bad, Time: badTime},
		{Device: good, Time: goodTime.Add(30 * time.Minute)},
	}
	results := sys.LocateBatch(batch, 3)
	if results[0].Err != nil || results[2].Err != nil {
		t.Fatalf("good queries failed: %v / %v", results[0].Err, results[2].Err)
	}
	if results[1].Err == nil {
		t.Fatal("query against unknown AP did not propagate its error")
	}
	for i, br := range results {
		if br.Query != batch[i] {
			t.Errorf("result %d out of order", i)
		}
	}
}

// TestLocateBatchWorkerClamp covers the worker-pool edge cases: zero and
// negative pool sizes default to GOMAXPROCS, oversized pools are clamped,
// and an empty batch returns an empty result slice.
func TestLocateBatchWorkerClamp(t *testing.T) {
	ds := buildDataset(t, 7)
	sys := newSystem(t, ds, locater.Config{})

	if got := sys.LocateBatch(nil, 4); len(got) != 0 {
		t.Errorf("empty batch returned %d results", len(got))
	}

	q := locater.Query{Device: ds.People[0].Device, Time: simStart.AddDate(0, 0, 6).Add(11 * time.Hour)}
	for _, workers := range []int{-1, 0, 1, 100} {
		results := sys.LocateBatch([]locater.Query{q, q, q}, workers)
		if len(results) != 3 {
			t.Fatalf("workers=%d: got %d results, want 3", workers, len(results))
		}
		for i, br := range results {
			if br.Err != nil {
				t.Fatalf("workers=%d result %d: %v", workers, i, br.Err)
			}
		}
	}
}
