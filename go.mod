module locater

go 1.23.0
