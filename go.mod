module locater

go 1.24
