package locater_test

import (
	"os"
	"path/filepath"
	"testing"
	"time"

	"locater"
)

// TestSegmentedCrashRecoveryEquivalence is the tentpole's end-to-end
// durability check: checkpoint (manifest #1), keep ingesting past many seal
// boundaries — segments ship to the cold tier at seal time, but no second
// manifest is ever published — then crash. Recovery must come from manifest
// #1 plus the WAL tail: the tail replay re-seals heads the dead run had
// already sealed, producing duplicate (device, seq) cold-tier records that
// resolve last-wins, and every Locate answer must match the live system's.
func TestSegmentedCrashRecoveryEquivalence(t *testing.T) {
	ds := buildDataset(t, 6)
	dir := t.TempDir()
	cfg := locater.Config{
		Building:           ds.Building,
		HistoryDays:        14,
		PromotionsPerRound: 8,
		MaxTrainingGaps:    100,
		SegmentMaxEvents:   16,
	}
	popts := locater.PersistOptions{Fsync: true}

	live, err := locater.Open(dir, cfg, popts)
	if err != nil {
		t.Fatal(err)
	}
	half := len(ds.Events) / 2
	if err := live.Ingest(ds.Events[:half]); err != nil {
		t.Fatal(err)
	}
	if err := live.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	// The tail: more ingest, more seals — all after the only manifest.
	if err := live.Ingest(ds.Events[half:]); err != nil {
		t.Fatal(err)
	}
	if err := live.EstimateDeltas(0.9, 2*time.Minute, 15*time.Minute); err != nil {
		t.Fatal(err)
	}
	segs := live.CacheStats().Segments
	if !segs.Enabled || !segs.ColdTier {
		t.Fatalf("segments not enabled with a cold tier: %+v", segs)
	}
	if segs.Segments == 0 || segs.Seals == 0 {
		t.Fatalf("workload sealed nothing: %+v", segs)
	}
	if _, err := os.Stat(filepath.Join(dir, "segments")); err != nil {
		t.Fatalf("cold tier directory missing: %v", err)
	}

	queries := sampleQueries(ds, 40)
	liveResults := live.LocateBatch(queries, 4)

	// Crash: no Close, no second Checkpoint.
	recovered, err := locater.Open(dir, cfg, popts)
	if err != nil {
		t.Fatal(err)
	}
	defer recovered.Close()

	if got, want := recovered.NumEvents(), live.NumEvents(); got != want {
		t.Fatalf("recovered %d events, want %d", got, want)
	}
	rsegs := recovered.CacheStats().Segments
	if rsegs.Segments == 0 {
		t.Fatalf("recovery registered no segments: %+v", rsegs)
	}
	// Cold reads: drop the decoded working set so every window pages in
	// from the crash-surviving cold tier, not the replay's warm cache.
	recovered.InvalidateSegmentCache()
	recResults := recovered.LocateBatch(queries, 4)
	for i := range queries {
		if liveResults[i].Err != nil || recResults[i].Err != nil {
			t.Fatalf("query %d errored: live=%v recovered=%v", i, liveResults[i].Err, recResults[i].Err)
		}
		l, r := liveResults[i].Result, recResults[i].Result
		if l.Outside != r.Outside || l.Region != r.Region || l.Room != r.Room {
			t.Errorf("query %d (%s, %v): live=%+v recovered=%+v",
				i, queries[i].Device, queries[i].Time, l, r)
		}
	}
	if st := recovered.CacheStats().Segments; st.DecodeFailures != 0 {
		t.Fatalf("recovery served with decode failures: %+v", st)
	}
}

// TestIncrementalCheckpointSkipsSealedHistory pins the "incremental" in
// incremental snapshots: a second checkpoint after a small tail of new
// events must not grow with total history — its snapshot file stays far
// smaller than the v1 full-log snapshot would be, because sealed segments
// ride along as manifest entries, not re-encoded events.
func TestIncrementalCheckpointSkipsSealedHistory(t *testing.T) {
	ds := buildDataset(t, 6)
	dir := t.TempDir()
	cfg := locater.Config{
		Building:         ds.Building,
		HistoryDays:      14,
		SegmentMaxEvents: 16,
	}
	sys, err := locater.Open(dir, cfg, locater.PersistOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()
	if err := sys.Ingest(ds.Events); err != nil {
		t.Fatal(err)
	}
	if err := sys.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	snaps, err := filepath.Glob(filepath.Join(dir, "snap-*.snap"))
	if err != nil || len(snaps) == 0 {
		t.Fatalf("no snapshot file found to size-check (%v)", err)
	}
	var snapBytes int64
	for _, p := range snaps {
		if st, err := os.Stat(p); err == nil && st.Size() > snapBytes {
			snapBytes = st.Size()
		}
	}
	segs := sys.CacheStats().Segments
	if segs.SegmentEvents == 0 {
		t.Fatal("nothing sealed; size check is meaningless")
	}
	// A v1 snapshot re-encodes every event (~25-40 bytes each in the snap
	// codec). The incremental one carries only heads + manifest: budget a
	// generous 12 bytes per sealed event to stay robust across codecs while
	// still failing loudly if segments ever get re-inlined.
	if limit := int64(segs.SegmentEvents)*12 + 64*1024; snapBytes > limit {
		t.Errorf("checkpoint wrote %d bytes for %d sealed + %d head events; not incremental (limit %d)",
			snapBytes, segs.SegmentEvents, segs.HeadEvents, limit)
	}
}

// TestCheckpointReclaimsDeadColdTier drives the full reclamation loop: each
// crash-replay cycle re-seals the WAL tail and supersedes the cold tier's
// (device, seq) records, piling up dead prefix copies in the per-device
// files. A later Checkpoint — after its snapshot commits — must rewrite
// those files down to the live set, and every Locate answer must survive the
// rewrite, both against the warm process and across one more recovery.
func TestCheckpointReclaimsDeadColdTier(t *testing.T) {
	ds := buildDataset(t, 6)
	dir := t.TempDir()
	cfg := locater.Config{
		Building:           ds.Building,
		HistoryDays:        14,
		PromotionsPerRound: 8,
		MaxTrainingGaps:    100,
		SegmentMaxEvents:   16,
		ColdTierMmap:       true,
	}
	popts := locater.PersistOptions{Fsync: false}

	// Seed: first half checkpointed, second half only in the WAL tail.
	sys, err := locater.Open(dir, cfg, popts)
	if err != nil {
		t.Fatal(err)
	}
	half := len(ds.Events) / 2
	if err := sys.Ingest(ds.Events[:half]); err != nil {
		t.Fatal(err)
	}
	if err := sys.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if err := sys.Ingest(ds.Events[half:]); err != nil {
		t.Fatal(err)
	}
	// Crash cycles: every reopen replays the same tail, re-seals the same
	// segment seqs, and leaves one more dead copy per record behind.
	for i := 0; i < 6; i++ {
		sys, err = locater.Open(dir, cfg, popts)
		if err != nil {
			t.Fatalf("crash cycle %d: %v", i, err)
		}
	}
	if err := sys.EstimateDeltas(0.9, 2*time.Minute, 15*time.Minute); err != nil {
		t.Fatal(err)
	}
	queries := sampleQueries(ds, 40)
	before := sys.LocateBatch(queries, 4)

	if err := sys.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	st := sys.CacheStats().Segments
	if st.Backend.Rewrites == 0 || st.Backend.ReclaimedBytes <= 0 {
		t.Fatalf("checkpoint reclaimed nothing despite %d crash replays: %+v", 6, st.Backend)
	}
	if st.Backend.RewriteFailures != 0 {
		t.Fatalf("reclaim reported rewrite failures: %+v", st.Backend)
	}

	// The rewrite must be invisible to readers: cold reads post-reclaim...
	sys.InvalidateSegmentCache()
	after := sys.LocateBatch(queries, 4)
	// ...and a full recovery from the rewritten files must agree too.
	rec, err := locater.Open(dir, cfg, popts)
	if err != nil {
		t.Fatal(err)
	}
	defer rec.Close()
	if err := rec.EstimateDeltas(0.9, 2*time.Minute, 15*time.Minute); err != nil {
		t.Fatal(err)
	}
	recovered := rec.LocateBatch(queries, 4)
	for i := range queries {
		if before[i].Err != nil || after[i].Err != nil || recovered[i].Err != nil {
			t.Fatalf("query %d errored: before=%v after=%v recovered=%v",
				i, before[i].Err, after[i].Err, recovered[i].Err)
		}
		b, a, r := before[i].Result, after[i].Result, recovered[i].Result
		if b != a || b != r {
			t.Errorf("query %d (%s, %v): before=%+v after=%+v recovered=%+v",
				i, queries[i].Device, queries[i].Time, b, a, r)
		}
	}
	if rs := rec.CacheStats().Segments; rs.DecodeFailures != 0 {
		t.Fatalf("recovery after reclaim hit decode failures: %+v", rs)
	}
}
