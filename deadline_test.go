package locater_test

import (
	"context"
	"errors"
	"testing"
	"time"

	"locater"
)

// TestLocateContextDeadline: an expired context yields ErrDeadlineExceeded
// (the distinct sentinel, not a generic error), the deadline counter in
// QueryStats moves, and the same query with room to run still succeeds.
func TestLocateContextDeadline(t *testing.T) {
	ds := buildDataset(t, 3)
	sys := newSystem(t, ds, locater.Config{EnableCache: true})
	dev := ds.People[0].Device
	tq := simStart.AddDate(0, 0, 2).Add(11 * time.Hour)

	expired, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()
	if _, err := sys.LocateContext(expired, dev, tq); !errors.Is(err, locater.ErrDeadlineExceeded) {
		t.Fatalf("expired context: err = %v, want ErrDeadlineExceeded", err)
	}
	if got := sys.QueryStats().DeadlineExceeded; got != 1 {
		t.Errorf("DeadlineExceeded = %d, want 1", got)
	}

	// A cancelled (not deadline-expired) context is NOT a deadline error.
	cancelled, cancel2 := context.WithCancel(context.Background())
	cancel2()
	if _, err := sys.LocateContext(cancelled, dev, tq); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled context: err = %v, want context.Canceled", err)
	}
	if got := sys.QueryStats().DeadlineExceeded; got != 1 {
		t.Errorf("DeadlineExceeded after cancel = %d, want still 1", got)
	}

	// With room to run, the same query succeeds and Locate (background
	// context) matches LocateContext.
	ctx, cancel3 := context.WithTimeout(context.Background(), time.Minute)
	defer cancel3()
	got, err := sys.LocateContext(ctx, dev, tq)
	if err != nil {
		t.Fatalf("live context: %v", err)
	}
	want, err := sys.Locate(dev, tq)
	if err != nil {
		t.Fatalf("Locate: %v", err)
	}
	if got.Region != want.Region {
		t.Errorf("LocateContext region %v != Locate region %v", got.Region, want.Region)
	}
}

// TestLocateBatchContextDeadline: a batch whose deadline expires mid-run
// reports ErrDeadlineExceeded per remaining query instead of hanging.
func TestLocateBatchContextDeadline(t *testing.T) {
	ds := buildDataset(t, 3)
	sys := newSystem(t, ds, locater.Config{})

	queries := make([]locater.Query, 0, 3*len(ds.People))
	for i := 0; i < 3; i++ {
		for _, p := range ds.People {
			queries = append(queries, locater.Query{
				Device: p.Device,
				Time:   simStart.AddDate(0, 0, 2).Add(time.Duration(9+i) * time.Hour),
			})
		}
	}
	expired, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()
	results := sys.LocateBatchContext(expired, queries, 2)
	if len(results) != len(queries) {
		t.Fatalf("got %d results for %d queries", len(results), len(queries))
	}
	for i, r := range results {
		if !errors.Is(r.Err, locater.ErrDeadlineExceeded) {
			t.Fatalf("result %d: err = %v, want ErrDeadlineExceeded", i, r.Err)
		}
	}

	// Unexpired context: the batch completes normally.
	ok := sys.LocateBatch(queries[:4], 2)
	for i, r := range ok {
		if r.Err != nil {
			t.Errorf("live batch result %d: %v", i, r.Err)
		}
	}
}

// TestDefaultQueryDeadline: a System-level DefaultQueryDeadline bounds calls
// whose context carries no deadline; a generous default leaves queries
// untouched, and an explicit context deadline wins over the default.
func TestDefaultQueryDeadline(t *testing.T) {
	ds := buildDataset(t, 3)
	sys := newSystem(t, ds, locater.Config{DefaultQueryDeadline: time.Minute})
	dev := ds.People[0].Device
	tq := simStart.AddDate(0, 0, 2).Add(11 * time.Hour)

	if _, err := sys.Locate(dev, tq); err != nil {
		t.Fatalf("generous default deadline broke Locate: %v", err)
	}

	// An explicit (already expired) context deadline is respected even
	// though the default is generous.
	expired, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()
	if _, err := sys.LocateContext(expired, dev, tq); !errors.Is(err, locater.ErrDeadlineExceeded) {
		t.Fatalf("explicit deadline ignored: err = %v", err)
	}
}
