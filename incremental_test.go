package locater_test

import (
	"math"
	"math/rand"
	"testing"
	"time"

	"locater"
	"locater/internal/cluster"
	"locater/internal/sim"
)

// gapStatsMaxErr compares every device's incrementally-maintained gap
// sufficient statistics against the batch-recompute oracle, returning the
// worst relative error across all fields. The incremental path and the
// oracle fold events through the same observe function, so any divergence
// beyond float noise is an ordering or bookkeeping bug.
func gapStatsMaxErr(t *testing.T, sys *locater.System, devices []locater.DeviceID) float64 {
	t.Helper()
	relErr := func(a, b float64) float64 {
		d := math.Abs(a - b)
		if m := math.Max(math.Abs(a), math.Abs(b)); m > 1 {
			d /= m
		}
		return d
	}
	worst := 0.0
	for _, dev := range devices {
		inc, ok1 := sys.GapStats(dev)
		bat, ok2 := sys.GapStatsOracle(dev)
		if ok1 != ok2 {
			t.Fatalf("device %s: incremental ok=%v, oracle ok=%v", dev, ok1, ok2)
		}
		if !ok1 {
			continue
		}
		if inc.LastNanos != bat.LastNanos {
			t.Fatalf("device %s: LastNanos %d vs oracle %d", dev, inc.LastNanos, bat.LastNanos)
		}
		if inc.RawEvents != bat.RawEvents {
			t.Fatalf("device %s: RawEvents %d vs oracle %d", dev, inc.RawEvents, bat.RawEvents)
		}
		worst = math.Max(worst, relErr(inc.Events, bat.Events))
		worst = math.Max(worst, relErr(inc.Gaps, bat.Gaps))
		worst = math.Max(worst, relErr(inc.GapSeconds, bat.GapSeconds))
		worst = math.Max(worst, relErr(inc.Inside, bat.Inside))
		worst = math.Max(worst, relErr(inc.Outside, bat.Outside))
		for i := range inc.Hist {
			worst = math.Max(worst, relErr(inc.Hist[i], bat.Hist[i]))
		}
	}
	return worst
}

func dsDevices(ds *sim.Dataset) []locater.DeviceID {
	devs := make([]locater.DeviceID, len(ds.People))
	for i, p := range ds.People {
		devs[i] = p.Device
	}
	return devs
}

// driveInterleaved replays ds.Events against sys in a random interleaving
// of ingest batches (some deliberately shuffled out of order), per-device
// invalidations (SetDelta), and queries. Deterministic in seed, identical
// across systems, so two arms driven with the same seed see the same
// operation sequence.
func driveInterleaved(t *testing.T, sys locater.Locater, ds *sim.Dataset, seed int64, queryEvery int) []locater.Result {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	var results []locater.Result
	step := 0
	for i := 0; i < len(ds.Events); {
		n := 32 + rng.Intn(96)
		if i+n > len(ds.Events) {
			n = len(ds.Events) - i
		}
		batch := make([]locater.Event, n)
		copy(batch, ds.Events[i:i+n])
		i += n
		// A third of the batches arrive shuffled: out-of-order within the
		// batch and straddling earlier batches' time ranges is exactly what
		// routes devices onto the rebuild escape hatch.
		if rng.Intn(3) == 0 {
			rng.Shuffle(len(batch), func(a, b int) { batch[a], batch[b] = batch[b], batch[a] })
		}
		if err := sys.Ingest(batch); err != nil {
			t.Fatal(err)
		}
		if rng.Intn(8) == 0 {
			// An explicit per-device invalidation mid-stream.
			p := ds.People[rng.Intn(len(ds.People))]
			if s, ok := sys.(interface {
				SetDelta(locater.DeviceID, time.Duration)
			}); ok {
				s.SetDelta(p.Device, time.Duration(5+rng.Intn(10))*time.Minute)
			}
		}
		step++
		if queryEvery > 0 && step%queryEvery == 0 {
			p := ds.People[rng.Intn(len(ds.People))]
			qt := simStart.Add(time.Duration(24+rng.Intn(48))*time.Hour + time.Duration(rng.Intn(3600))*time.Second)
			res, err := sys.Locate(p.Device, qt)
			if err != nil {
				t.Fatal(err)
			}
			results = append(results, res)
		}
	}
	return results
}

// TestIncrementalStatsMatchOracleUnderInterleaving is the tentpole's core
// property: after any interleaving of in-order ingest, out-of-order ingest,
// invalidation, and queries, the incremental gap statistics equal a batch
// recompute from the store within 1e-9.
func TestIncrementalStatsMatchOracleUnderInterleaving(t *testing.T) {
	ds := buildDataset(t, 5)
	for _, seed := range []int64{1, 7, 42} {
		sys := newEmptySystem(t, ds, locater.Config{EnableCache: true})
		driveInterleaved(t, sys, ds, seed, 6)
		if err := gapStatsMaxErr(t, sys, dsDevices(ds)); err > 1e-9 {
			t.Fatalf("seed %d: incremental stats diverge from oracle by %g", seed, err)
		}
	}
}

// TestIncrementalVsRecomputeByteIdentical drives the incremental write
// path and the legacy recompute-on-write path through the same interleaved
// workload (same seed, arbitrary un-quantized query times) and requires
// byte-identical answers: the incremental maintenance must be invisible to
// every query.
func TestIncrementalVsRecomputeByteIdentical(t *testing.T) {
	ds := buildDataset(t, 5)
	for _, seed := range []int64{3, 19} {
		inc := newEmptySystem(t, ds, locater.Config{EnableCache: true})
		rec := newEmptySystem(t, ds, locater.Config{EnableCache: true, RecomputeOnWrite: true})
		ri := driveInterleaved(t, inc, ds, seed, 4)
		rr := driveInterleaved(t, rec, ds, seed, 4)
		if len(ri) != len(rr) {
			t.Fatalf("seed %d: %d vs %d results", seed, len(ri), len(rr))
		}
		for i := range ri {
			if ri[i] != rr[i] {
				t.Fatalf("seed %d: result %d diverges:\nincremental: %+v\nrecompute:   %+v", seed, i, ri[i], rr[i])
			}
		}
	}
}

// TestIncrementalStatsSurviveCrashRecovery checkpoints mid-stream, keeps
// ingesting, crashes (reopen without Close), and requires the recovered
// system's incremental statistics to match its own batch oracle AND the
// dead system's: recovery replays the WAL through the same observe path.
func TestIncrementalStatsSurviveCrashRecovery(t *testing.T) {
	ds := buildDataset(t, 5)
	dir := t.TempDir()
	cfg := locater.Config{
		Building:           ds.Building,
		EnableCache:        true,
		HistoryDays:        14,
		PromotionsPerRound: 8,
		MaxTrainingGaps:    100,
	}
	popts := locater.PersistOptions{Fsync: true}
	live, err := locater.Open(dir, cfg, popts)
	if err != nil {
		t.Fatal(err)
	}
	driveInterleaved(t, live, ds, 11, 0)
	if err := live.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	// Tail after the only checkpoint: recovered state stitches the
	// snapshot with a WAL replay.
	tail := make([]locater.Event, 0, 64)
	for i, p := range ds.People {
		tail = append(tail, locater.Event{
			Device: p.Device,
			Time:   simStart.Add(120*time.Hour + time.Duration(i)*time.Minute),
			AP:     ds.Events[0].AP,
		})
	}
	if err := live.Ingest(tail); err != nil {
		t.Fatal(err)
	}
	devs := dsDevices(ds)
	if err := gapStatsMaxErr(t, live, devs); err > 1e-9 {
		t.Fatalf("live stats diverge from oracle by %g", err)
	}

	rec, err := locater.Open(dir, cfg, popts)
	if err != nil {
		t.Fatal(err)
	}
	defer rec.Close()
	if err := gapStatsMaxErr(t, rec, devs); err > 1e-9 {
		t.Fatalf("recovered stats diverge from oracle by %g", err)
	}
	for _, d := range devs {
		a, ok1 := live.GapStats(d)
		b, ok2 := rec.GapStats(d)
		if ok1 != ok2 || a != b {
			t.Fatalf("device %s: recovered stats differ from live (ok %v/%v)", d, ok1, ok2)
		}
	}
}

// TestIncrementalStatsAcrossCluster routes an interleaved workload through
// a sharded deployment and checks every shard's incremental statistics
// against that shard's own oracle: routing must not perturb maintenance.
func TestIncrementalStatsAcrossCluster(t *testing.T) {
	ds := buildDataset(t, 5)
	cfg := locater.Config{
		Building:           ds.Building,
		EnableCache:        true,
		HistoryDays:        14,
		PromotionsPerRound: 8,
		MaxTrainingGaps:    100,
	}
	cl, err := cluster.New(cfg, cluster.Options{Shards: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	driveInterleaved(t, cl, ds, 23, 6)
	for i := 0; i < cl.NumShards(); i++ {
		if err := gapStatsMaxErr(t, cl.Shard(i), dsDevices(ds)); err > 1e-9 {
			t.Fatalf("shard %d: incremental stats diverge from oracle by %g", i, err)
		}
	}
}

// newEmptySystem builds a System over ds.Building without ingesting
// anything (the interleaving driver owns ingest).
func newEmptySystem(t testing.TB, ds *sim.Dataset, cfg locater.Config) *locater.System {
	t.Helper()
	cfg.Building = ds.Building
	cfg.HistoryDays = 14
	cfg.PromotionsPerRound = 8
	cfg.MaxTrainingGaps = 100
	sys, err := locater.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return sys
}

// FuzzIncrementalMaintenance lets the fuzzer pick the interleaving: the
// seed selects batch boundaries, shuffles, and invalidations; the property
// is always stats-equal-oracle. `go test -fuzz=FuzzIncrementalMaintenance`
// explores; the seed corpus keeps the target exercised on every plain run.
func FuzzIncrementalMaintenance(f *testing.F) {
	sc, err := sim.DBH(2)
	if err != nil {
		f.Fatal(err)
	}
	ds, err := sim.Generate(sc.Config(simStart, 3, 5))
	if err != nil {
		f.Fatal(err)
	}
	f.Add(int64(1))
	f.Add(int64(1 << 40))
	f.Add(int64(-7))
	f.Fuzz(func(t *testing.T, seed int64) {
		cfg := locater.Config{
			Building:           ds.Building,
			EnableCache:        true,
			HistoryDays:        14,
			PromotionsPerRound: 8,
			MaxTrainingGaps:    50,
		}
		sys, err := locater.New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		driveInterleaved(t, sys, ds, seed, 10)
		if errv := gapStatsMaxErr(t, sys, dsDevices(ds)); errv > 1e-9 {
			t.Fatalf("seed %d: incremental stats diverge from oracle by %g", seed, errv)
		}
	})
}
