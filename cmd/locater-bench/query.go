package main

import (
	"fmt"
	"math"
	"testing"
	"time"

	"locater/internal/affgraph"
	"locater/internal/event"
	"locater/internal/fine"
	"locater/internal/space"
	"locater/internal/store"
)

// queryReport is the machine-readable result of -query, emitted as
// BENCH_query.json for the CI perf-tracking pipeline: the fine-stage query
// kernel's cold/warm latency and allocation ladder at increasing neighbor
// counts, for both I-FINE and D-FINE, measured against the preserved
// pre-refactor reference kernel. Every row carries the posterior-correctness
// gate's outcome — the bench FAILS (non-zero exit) if the optimized kernel's
// posteriors diverge from the reference beyond equiv_tolerance.
type queryReport struct {
	Name string `json:"name"`
	// Events / Devices describe the synthetic scene backing the largest row.
	Events  int `json:"events"`
	Devices int `json:"devices"`
	// StopConditions is false: the ladder measures the full kernel (every
	// neighbor processed), not an early-exit path.
	StopConditions bool       `json:"stop_conditions"`
	EquivTolerance float64    `json:"equiv_tolerance"`
	Rows           []queryRow `json:"rows"`
}

type queryRow struct {
	Variant   string `json:"variant"`
	Neighbors int    `json:"neighbors"`
	// ColdNs: optimized kernel, affinity caches empty at query start.
	// RefColdNs: the pre-refactor reference kernel under identical state.
	ColdNs    float64 `json:"cold_ns"`
	RefColdNs float64 `json:"ref_cold_ns"`
	Speedup   float64 `json:"speedup"`
	// WarmNs: optimized kernel with the pairwise-affinity cache warmed.
	WarmNs float64 `json:"warm_ns"`
	// AllocsPerOp / RefAllocsPerOp: heap allocations of one cold query.
	AllocsPerOp       float64 `json:"allocs_per_op"`
	RefAllocsPerOp    float64 `json:"ref_allocs_per_op"`
	AllocReductionPct float64 `json:"alloc_reduction_pct"`
	// EquivMaxErr is the largest |posterior difference| vs the reference;
	// RoomMatch reports the answered room (and processed-neighbor count)
	// agreed. The bench exits non-zero unless every row passes.
	EquivMaxErr float64 `json:"equiv_max_err"`
	RoomMatch   bool    `json:"room_match"`
}

// queryScene is one synthetic fine-stage workload: a corridor of overlapping
// AP regions, a queried device with an 8-week history, and n neighbor
// devices online at t_q whose histories co-locate with the queried device's.
type queryScene struct {
	bld    *space.Building
	st     *store.Store
	dev    event.DeviceID
	region space.RegionID
	tq     time.Time
	window time.Duration
}

func seedQueryScene(neighbors int) (*queryScene, error) {
	const nAPs = 12
	var rooms []space.Room
	var aps []space.AccessPoint
	// AP i covers rooms 8i..8i+15: 16 candidate rooms per region (a dense
	// office corridor), adjacent regions overlapping by 8 rooms, so R_is
	// sets are non-trivial and the posterior works over a realistic room
	// count.
	total := 8*(nAPs-1) + 16
	for r := 0; r < total; r++ {
		kind := space.Private
		if r%3 == 0 {
			kind = space.Public
		}
		rooms = append(rooms, space.Room{ID: space.RoomID(fmt.Sprintf("r%03d", r)), Kind: kind})
	}
	for i := 0; i < nAPs; i++ {
		var cov []space.RoomID
		for r := 8 * i; r < 8*i+16; r++ {
			cov = append(cov, space.RoomID(fmt.Sprintf("r%03d", r)))
		}
		aps = append(aps, space.AccessPoint{ID: space.APID(fmt.Sprintf("ap%02d", i)), Coverage: cov})
	}
	prefs := map[string][]space.RoomID{"q": {"r042"}}
	bld, err := space.NewBuilding(space.Config{Name: "query-bench", Rooms: rooms, AccessPoints: aps, PreferredRooms: prefs})
	if err != nil {
		return nil, err
	}

	tq := time.Date(2026, 3, 2, 9, 0, 0, 0, time.UTC)
	st := store.New(0)
	var evs []event.Event
	// Queried device: an event every 2 hours across 8 weeks at the APs
	// around the query region, plus one at t_q.
	window := 8 * 7 * 24 * time.Hour
	var qEvents []event.Event
	for ts := tq.Add(-window); ts.Before(tq); ts = ts.Add(2 * time.Hour) {
		ap := space.APID(fmt.Sprintf("ap%02d", 4+int(ts.Unix()/7200)%3))
		qEvents = append(qEvents, event.Event{Device: "q", Time: ts, AP: ap})
	}
	evs = append(evs, qEvents...)
	evs = append(evs, event.Event{Device: "q", Time: tq, AP: "ap05"})
	// Neighbors: ~60 history events each — half sampled from the queried
	// device's own timeline (same AP, within δ: intersecting events, so
	// pairwise affinities are positive) — plus one event at t_q at an
	// overlapping AP.
	for j := 0; j < neighbors; j++ {
		d := event.DeviceID(fmt.Sprintf("n%03d", j))
		for k := 0; k < 60; k++ {
			var ts time.Time
			var ap space.APID
			if k%2 == 0 {
				qe := qEvents[(k*131+j*17)%len(qEvents)]
				ts = qe.Time.Add(2 * time.Minute)
				ap = qe.AP
			} else {
				ts = tq.Add(-time.Duration(1+(k*271+j*37)%(8*7*24)) * time.Hour)
				ap = space.APID(fmt.Sprintf("ap%02d", 4+(j+k)%3))
			}
			evs = append(evs, event.Event{Device: d, Time: ts, AP: ap})
		}
		evs = append(evs, event.Event{Device: d, Time: tq, AP: space.APID(fmt.Sprintf("ap%02d", 4+j%3))})
	}
	if _, err := st.Ingest(evs); err != nil {
		return nil, err
	}
	if err := st.SetDelta("q", 10*time.Minute); err != nil {
		return nil, err
	}
	for j := 0; j < neighbors; j++ {
		if err := st.SetDelta(event.DeviceID(fmt.Sprintf("n%03d", j)), 10*time.Minute); err != nil {
			return nil, err
		}
	}
	g, _ := bld.RegionOf("ap05")
	return &queryScene{bld: bld, st: st, dev: "q", region: g, tq: tq, window: window}, nil
}

// coldLocalizer builds a fine localizer on the production affinity stack: a
// CachedAffinity in front of the store-backed provider. The returned cache
// handle lets the measurement loop epoch-invalidate before each call, so a
// "cold" measurement is exactly a post-write query — every affinity
// recomputed from history — without re-paying one-time construction.
func (s *queryScene) coldLocalizer(variant fine.Variant) (*fine.Localizer, *affgraph.CachedAffinity) {
	base := fine.NewStoreAffinity(s.st, s.window)
	cached := affgraph.NewCachedAffinity(affgraph.New(affgraph.Options{}), base, time.Hour, 0)
	l := fine.New(s.bld, s.st, cached, nil, fine.Options{
		Variant:           variant,
		UseStopConditions: false,
		HistoryWindow:     s.window,
	})
	return l, cached
}

// measureQueryNs times fn adaptively: slow calls (reference D-FINE at 200
// neighbors runs whole seconds) are measured over a couple of iterations,
// fast ones over a ~40ms budget, minimum of two rounds.
func measureQueryNs(fn func()) float64 {
	probe := time.Now()
	fn()
	first := time.Since(probe)
	if first > 300*time.Millisecond {
		second := time.Now()
		fn()
		d := time.Since(second)
		if d < first {
			return float64(d.Nanoseconds())
		}
		return float64(first.Nanoseconds())
	}
	best := 0.0
	for round := 0; round < 2; round++ {
		iters := 0
		start := time.Now()
		for time.Since(start) < 40*time.Millisecond || iters < 3 {
			fn()
			iters++
		}
		ns := float64(time.Since(start).Nanoseconds()) / float64(iters)
		if round == 0 || ns < best {
			best = ns
		}
	}
	return best
}

// runQuery measures the fine-stage query kernel ladder and writes
// BENCH_query.json. Every row first passes the posterior-correctness gate:
// the optimized kernel must match the pre-refactor reference to tol.
func runQuery(outDir string) error {
	const tol = 1e-12
	rep := queryReport{
		Name:           "query",
		StopConditions: false,
		EquivTolerance: tol,
	}
	fmt.Printf("%-8s %10s %14s %14s %9s %12s %9s %9s %9s\n",
		"variant", "neighbors", "cold", "ref-cold", "speedup", "warm", "allocs", "ref", "Δallocs")
	for _, variant := range []fine.Variant{fine.Independent, fine.Dependent} {
		for _, n := range []int{10, 50, 200} {
			scene, err := seedQueryScene(n)
			if err != nil {
				return err
			}
			rep.Events = scene.st.NumEvents()
			rep.Devices = scene.st.NumDevices()

			// Correctness gate before anything is timed.
			gate, _ := scene.coldLocalizer(variant)
			ref, err := gate.ReferenceLocate(scene.dev, scene.region, scene.tq)
			if err != nil {
				return fmt.Errorf("%v/%d: reference: %w", variant, n, err)
			}
			got, err := gate.Locate(scene.dev, scene.region, scene.tq)
			if err != nil {
				return fmt.Errorf("%v/%d: optimized: %w", variant, n, err)
			}
			if got.TotalNeighbors != n {
				return fmt.Errorf("%v/%d: scene produced %d neighbors, want %d", variant, n, got.TotalNeighbors, n)
			}
			maxErr := 0.0
			for r, p := range ref.Posterior {
				if d := math.Abs(got.Posterior[r] - p); d > maxErr {
					maxErr = d
				}
			}
			row := queryRow{
				Variant:     variant.String(),
				Neighbors:   n,
				EquivMaxErr: maxErr,
				RoomMatch: got.Room == ref.Room &&
					got.ProcessedNeighbors == ref.ProcessedNeighbors &&
					len(got.Posterior) == len(ref.Posterior),
			}
			if !row.RoomMatch || maxErr > tol {
				return fmt.Errorf("%v/%d: correctness gate FAILED: room %s vs %s, max posterior err %.3g (tol %.0e)",
					variant, n, got.Room, ref.Room, maxErr, tol)
			}

			// Cold: the affinity cache is epoch-invalidated before every
			// measured call (the post-write state), so each query recomputes
			// every pairwise affinity from history through the production
			// cache stack — batched sweep for the optimized kernel, per-pair
			// copies for the reference.
			l, cached := scene.coldLocalizer(variant)
			row.ColdNs = measureQueryNs(func() {
				cached.Invalidate()
				if _, err := l.Locate(scene.dev, scene.region, scene.tq); err != nil {
					panic(err)
				}
			})
			row.RefColdNs = measureQueryNs(func() {
				cached.Invalidate()
				if _, err := l.ReferenceLocate(scene.dev, scene.region, scene.tq); err != nil {
					panic(err)
				}
			})
			row.Speedup = row.RefColdNs / row.ColdNs

			// Warm: affinity cache populated by a first call.
			if _, err := l.Locate(scene.dev, scene.region, scene.tq); err != nil {
				return err
			}
			row.WarmNs = measureQueryNs(func() {
				if _, err := l.Locate(scene.dev, scene.region, scene.tq); err != nil {
					panic(err)
				}
			})

			// Allocations of one cold (post-invalidation) query.
			row.AllocsPerOp = testing.AllocsPerRun(2, func() {
				cached.Invalidate()
				l.Locate(scene.dev, scene.region, scene.tq)
			})
			row.RefAllocsPerOp = testing.AllocsPerRun(1, func() {
				cached.Invalidate()
				l.ReferenceLocate(scene.dev, scene.region, scene.tq)
			})
			if row.RefAllocsPerOp > 0 {
				row.AllocReductionPct = 100 * (1 - row.AllocsPerOp/row.RefAllocsPerOp)
			}
			rep.Rows = append(rep.Rows, row)
			fmt.Printf("%-8s %10d %12.2fms %12.2fms %8.1fx %10.2fms %9.0f %9.0f %8.1f%%\n",
				row.Variant, n, row.ColdNs/1e6, row.RefColdNs/1e6, row.Speedup,
				row.WarmNs/1e6, row.AllocsPerOp, row.RefAllocsPerOp, row.AllocReductionPct)
		}
	}
	return writeBenchJSON(outDir, "BENCH_query.json", rep)
}
