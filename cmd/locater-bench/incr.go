package main

import (
	"fmt"
	"math"
	"math/rand"
	"time"

	"locater"
	"locater/internal/space"
)

// The incremental-maintenance ladder's workload shape: every device seeds
// memEventsPerDev events of history (reusing the memory ladder's generator,
// so segments and out-of-order arrivals look realistic), then a small live
// cohort keeps writing while a fixed probe set queries the historical
// cohort at affinity-bucket-aligned reference times. The two arms differ in
// exactly one bit — Config.RecomputeOnWrite — so any divergence in answers
// is the incremental write path's fault.
const (
	incrRounds         = 8
	incrEventsPerWrite = 2
	incrQueriesPerRnd  = 48
	incrStatsSample    = 200
)

// incrReport is the machine-readable result of -incr, emitted as
// BENCH_incr.json. CI gates on the headline (largest-rung) fields:
// identical must be true, stats_max_err ≤ 1e-9, maintenance_ratio ≥ 5.
type incrReport struct {
	Name           string    `json:"name"`
	Rounds         int       `json:"rounds"`
	EventsPerWrite int       `json:"events_per_write"`
	Rows           []incrRow `json:"rows"`
	// Headline gates, taken from the largest rung.
	Identical        bool    `json:"identical"`
	StatsMaxErr      float64 `json:"stats_max_err"`
	MaintenanceRatio float64 `json:"maintenance_ratio"`
}

type incrRow struct {
	Devices     int `json:"devices"`
	LiveDevices int `json:"live_devices"`
	Queries     int `json:"queries"`
	// Identical reports the byte-identity gate: every Locate answer under
	// incremental maintenance equals the recompute arm's, field for field,
	// across every interleaved ingest/query round.
	Identical bool `json:"identical"`
	// StatsMaxErr is the worst relative error between the incremental gap
	// sufficient statistics and the batch-recompute oracle over a device
	// sample (live and historical devices both).
	StatsMaxErr float64 `json:"stats_max_err"`
	// MaintenanceNanos* is each arm's write-path model-maintenance cost
	// across the measured rounds: coarse sufficient-statistic observation
	// plus affinity fallback recomputation — the work each strategy spends
	// keeping derived model state consistent with writes. Model training
	// (TrainNanos*) is reported separately and excluded from the ratio:
	// trained coarse models are history-dependent and are rebuilt on touch
	// under either strategy, so both arms pay it identically by
	// construction and it measures training cost, not maintenance
	// strategy. The ratio is the headline — recompute over incremental.
	MaintenanceNanosIncremental int64   `json:"maintenance_nanos_incremental"`
	MaintenanceNanosRecompute   int64   `json:"maintenance_nanos_recompute"`
	MaintenanceRatio            float64 `json:"maintenance_ratio"`
	TrainNanosIncremental       int64   `json:"train_nanos_incremental"`
	TrainNanosRecompute         int64   `json:"train_nanos_recompute"`
	// ScopedKept / ScopedStale are the incremental arm's per-device
	// validation outcomes: cache entries that survived writes versus ones
	// the write sequence actually invalidated.
	ScopedKept  int64 `json:"scoped_kept"`
	ScopedStale int64 `json:"scoped_stale"`
	// Rebuilds counts incremental-stats escape hatches taken (out-of-order
	// arrivals routing a device to a from-store rebuild).
	Rebuilds int64 `json:"rebuilds"`
}

func incrConfig(b *space.Building, recompute bool) locater.Config {
	return locater.Config{
		Building:           b,
		EnableCache:        true,
		MaxNeighbors:       memMaxNeighbors,
		ModelCacheSize:     memModelCacheCap,
		SegmentCacheSize:   memLatencyCacheSegs,
		HistoryDays:        memSpanDays,
		PromotionsPerRound: 8,
		MaxTrainingGaps:    12,
		RecomputeOnWrite:   recompute,
	}
}

// incrLiveCount sizes the live cohort: enough writers that every round
// touches many devices, small enough that the historical cohort dominates
// the probe set.
func incrLiveCount(n int) int {
	live := n / 50
	if live < 8 {
		live = 8
	}
	if live > n/2 {
		live = n / 2
	}
	return live
}

// incrQuerySet probes the historical cohort (device indices ≥ live) at
// hour-aligned reference times. Hour alignment matters: the affinity cache
// buckets references by the hour, so aligned probes re-ask the same cache
// entries round after round — precisely the retention the scoped
// validation exists to provide.
func incrQuerySet(n, live int) []locater.Query {
	rng := rand.New(rand.NewSource(4242))
	qs := make([]locater.Query, 0, incrQueriesPerRnd)
	for len(qs) < incrQueriesPerRnd {
		d := live + rng.Intn(n-live)
		day := 1 + rng.Intn(memSpanDays-2)
		hour := 9 + rng.Intn(9)
		qs = append(qs, locater.Query{
			Device: locater.DeviceID(fmt.Sprintf("mem%06d", d)),
			Time:   memBase.Add(time.Duration(day*24+hour) * time.Hour),
		})
	}
	return qs
}

// incrLiveBatch generates round r's writes for live device d: events past
// the seed window, deterministic in (d, r), identical across arms.
func incrLiveBatch(d, r int) []locater.Event {
	rng := rand.New(rand.NewSource(int64(d)*1099511628211 + int64(r)*31 + 5))
	dev := locater.DeviceID(fmt.Sprintf("mem%06d", d))
	base := memBase.Add(time.Duration(memSpanDays*24+r) * time.Hour)
	batch := make([]locater.Event, 0, incrEventsPerWrite)
	for i := 0; i < incrEventsPerWrite; i++ {
		batch = append(batch, locater.Event{
			Device: dev,
			Time:   base.Add(time.Duration(rng.Int63n(int64(time.Hour)))),
			AP:     locater.APID(fmt.Sprintf("ap%02d", rng.Intn(memAPs))),
		})
	}
	return batch
}

func maintenanceNanos(m locater.MaintenanceStats) int64 {
	return m.Coarse.ObserveNanos + m.Affinity.FallbackNanos
}

// incrRunArm seeds one arm, warms the caches with one query pass, then
// interleaves rounds of live-cohort ingest with the fixed probe set,
// returning every round's answers plus the write-path maintenance and
// model-training cost paid across the measured rounds.
func incrRunArm(b *space.Building, n, live int, qs []locater.Query, recompute bool) (*locater.System, []locater.Result, int64, int64, error) {
	sys, err := locater.New(incrConfig(b, recompute))
	if err != nil {
		return nil, nil, 0, 0, err
	}
	if _, err := memIngest(sys, 0, n); err != nil {
		return nil, nil, 0, 0, err
	}
	if err := sys.EstimateDeltas(0.9, 2*time.Minute, 15*time.Minute); err != nil {
		return nil, nil, 0, 0, err
	}
	// Warm pass: train models, populate the affinity tier.
	for _, q := range qs {
		if _, err := sys.Locate(q.Device, q.Time); err != nil {
			return nil, nil, 0, 0, err
		}
	}
	m0 := sys.MaintenanceStats()
	var results []locater.Result
	for r := 0; r < incrRounds; r++ {
		for d := 0; d < live; d++ {
			if err := sys.Ingest(incrLiveBatch(d, r)); err != nil {
				return nil, nil, 0, 0, err
			}
		}
		for _, q := range qs {
			res, err := sys.Locate(q.Device, q.Time)
			if err != nil {
				return nil, nil, 0, 0, err
			}
			results = append(results, res)
		}
	}
	m1 := sys.MaintenanceStats()
	spent := maintenanceNanos(m1) - maintenanceNanos(m0)
	train := m1.Coarse.TrainNanos - m0.Coarse.TrainNanos
	return sys, results, spent, train, nil
}

// incrStatsErr compares the incremental gap sufficient statistics against
// the batch-recompute oracle over a sample of devices, returning the worst
// relative error across every field of every sampled device.
func incrStatsErr(sys *locater.System, n int) float64 {
	step := n / incrStatsSample
	if step < 1 {
		step = 1
	}
	worst := 0.0
	relErr := func(a, b float64) float64 {
		d := math.Abs(a - b)
		if m := math.Max(math.Abs(a), math.Abs(b)); m > 1 {
			d /= m
		}
		return d
	}
	for d := 0; d < n; d += step {
		dev := locater.DeviceID(fmt.Sprintf("mem%06d", d))
		inc, ok1 := sys.GapStats(dev)
		bat, ok2 := sys.GapStatsOracle(dev)
		if ok1 != ok2 {
			return math.Inf(1)
		}
		if !ok1 {
			continue
		}
		if inc.LastNanos != bat.LastNanos || inc.RawEvents != bat.RawEvents {
			return math.Inf(1)
		}
		worst = math.Max(worst, relErr(inc.Events, bat.Events))
		worst = math.Max(worst, relErr(inc.Gaps, bat.Gaps))
		worst = math.Max(worst, relErr(inc.GapSeconds, bat.GapSeconds))
		worst = math.Max(worst, relErr(inc.Inside, bat.Inside))
		worst = math.Max(worst, relErr(inc.Outside, bat.Outside))
		for i := range inc.Hist {
			worst = math.Max(worst, relErr(inc.Hist[i], bat.Hist[i]))
		}
	}
	return worst
}

// runIncr drives the two-arm incremental-maintenance comparison over the
// device ladder and writes BENCH_incr.json.
func runIncr(ladder []int, benchOut string) error {
	b, err := memBuilding()
	if err != nil {
		return err
	}
	rep := incrReport{
		Name:           "incremental-maintenance",
		Rounds:         incrRounds,
		EventsPerWrite: incrEventsPerWrite,
	}
	for _, n := range ladder {
		live := incrLiveCount(n)
		qs := incrQuerySet(n, live)
		fmt.Printf("incr: %d devices (%d live writers, %d probes × %d rounds)\n", n, live, len(qs), incrRounds)

		incSys, incRes, incNanos, incTrain, err := incrRunArm(b, n, live, qs, false)
		if err != nil {
			return fmt.Errorf("incremental arm: %w", err)
		}
		_, recRes, recNanos, recTrain, err := incrRunArm(b, n, live, qs, true)
		if err != nil {
			return fmt.Errorf("recompute arm: %w", err)
		}

		row := incrRow{
			Devices:                     n,
			LiveDevices:                 live,
			Queries:                     len(qs),
			Identical:                   memResultsIdentical(incRes, recRes),
			StatsMaxErr:                 incrStatsErr(incSys, n),
			MaintenanceNanosIncremental: incNanos,
			MaintenanceNanosRecompute:   recNanos,
			TrainNanosIncremental:       incTrain,
			TrainNanosRecompute:         recTrain,
		}
		if incNanos > 0 {
			row.MaintenanceRatio = float64(recNanos) / float64(incNanos)
		} else if recNanos > 0 {
			row.MaintenanceRatio = math.Inf(1)
		}
		ms := incSys.MaintenanceStats()
		row.ScopedKept = ms.Affinity.ScopedKept
		row.ScopedStale = ms.Affinity.ScopedStale
		row.Rebuilds = ms.Coarse.Rebuilds
		rep.Rows = append(rep.Rows, row)
		fmt.Printf("incr: %d devices: identical=%v stats_err=%.3g maintenance %s vs %s (ratio %.1f, shared train %s vs %s)\n",
			n, row.Identical, row.StatsMaxErr,
			time.Duration(incNanos), time.Duration(recNanos), row.MaintenanceRatio,
			time.Duration(incTrain), time.Duration(recTrain))
	}
	last := rep.Rows[len(rep.Rows)-1]
	rep.Identical = last.Identical
	rep.StatsMaxErr = last.StatsMaxErr
	rep.MaintenanceRatio = last.MaintenanceRatio
	for _, r := range rep.Rows {
		rep.Identical = rep.Identical && r.Identical
		if r.StatsMaxErr > rep.StatsMaxErr {
			rep.StatsMaxErr = r.StatsMaxErr
		}
	}
	if err := writeBenchJSON(benchOut, "BENCH_incr.json", rep); err != nil {
		return err
	}
	// Self-enforced gates: CI re-checks the artifact with jq, but the bench
	// itself fails the run on a violation.
	if !rep.Identical {
		return fmt.Errorf("incremental maintenance changed query answers (identity gate)")
	}
	if rep.StatsMaxErr > 1e-9 {
		return fmt.Errorf("incremental stats diverge from the batch oracle by %g (gate 1e-9)", rep.StatsMaxErr)
	}
	if rep.MaintenanceRatio < 5 {
		return fmt.Errorf("maintenance ratio %.2f at the largest rung (gate ≥ 5)", rep.MaintenanceRatio)
	}
	return nil
}
