// Command locater-bench regenerates the paper's evaluation tables and
// figures (Section 6) over simulated workloads and prints them in the same
// row/series structure the paper reports. It also measures the concurrent
// query engine: -throughput runs the same query workload through
// System.LocateBatch at increasing worker-pool sizes and reports
// queries/sec and the multi-core speedup over a single worker.
//
// Usage:
//
//	locater-bench                 # run every experiment
//	locater-bench -exp table3     # run one experiment
//	locater-bench -list           # list experiments
//	locater-bench -per-class 8 -days 70 -queries 500 -seed 7
//	locater-bench -throughput -workers 8   # parallel LocateBatch scaling
//	locater-bench -persist -persist-events 200000   # durable-store throughput
//	locater-bench -neighbors               # occupancy-index neighbor discovery
//	locater-bench -memory -memory-devices 1000,10000,50000   # segmented-store footprint
//
// The -throughput, -persist, -neighbors, and -memory modes also emit
// machine-readable BENCH_throughput.json / BENCH_persist.json /
// BENCH_neighbors.json / BENCH_memory.json (into -bench-out) so CI can
// track the performance trajectory across commits.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"locater"
	"locater/internal/experiments"
)

func main() {
	var (
		expName    = flag.String("exp", "", "experiment to run (default: all); see -list")
		list       = flag.Bool("list", false, "list experiments and exit")
		perClass   = flag.Int("per-class", 0, "people per predictability class (default 6)")
		days       = flag.Int("days", 0, "simulated days (default 70)")
		queries    = flag.Int("queries", 0, "queries per experiment (default 400)")
		seed       = flag.Int64("seed", 0, "random seed (default 1)")
		slow       = flag.Bool("faithful", false, "verbatim Algorithm 1 (one promotion per self-training round; slower)")
		throughput = flag.Bool("throughput", false, "measure parallel LocateBatch throughput instead of the paper tables")
		workers    = flag.Int("workers", 0, "max worker-pool size for -throughput (default GOMAXPROCS)")
		deadline   = flag.Duration("deadline", 0, "per-batch deadline for -throughput; shed queries are reported separately (0 = unbounded)")

		neighbors = flag.Bool("neighbors", false, "measure occupancy-index neighbor discovery vs the full-scan baseline")

		query = flag.Bool("query", false, "measure the fine-stage query kernel (cold/warm latency + allocs at 10/50/200 neighbors, I-FINE and D-FINE) against the pre-refactor reference, with a posterior-correctness gate")

		shard = flag.Bool("shard", false, "measure the sharded cluster: 1/2/4-shard ingest + query ladder with a 1-shard-vs-System identity gate")

		memory        = flag.Bool("memory", false, "measure segmented-store memory + cold/warm query latency against the plain-slice layout, with byte-identity and crash-recovery gates")
		memoryDevices = flag.String("memory-devices", "1000,10000,50000", "comma-separated device ladder for -memory")

		incr        = flag.Bool("incr", false, "measure incremental model maintenance vs recompute-on-write: interleaved ingest/query rounds with byte-identity, stats-oracle, and maintenance-cost gates")
		incrDevices = flag.String("incr-devices", "1000,10000", "comma-separated device ladder for -incr")

		persist       = flag.Bool("persist", false, "measure durable event store ingest + recovery throughput")
		persistEvents = flag.Int("persist-events", 200000, "events for -persist")
		persistDir    = flag.String("persist-dir", "", "WAL directory for -persist (default: a temp dir, removed afterwards)")
		persistFsync  = flag.Bool("persist-fsync", true, "fsync (group-commit) mode for -persist")
		benchOut      = flag.String("bench-out", ".", "directory for BENCH_*.json reports")
	)
	flag.Parse()

	if *list {
		for _, d := range experiments.All() {
			fmt.Printf("%-8s %s\n", d.Name, d.Description)
		}
		return
	}

	p := experiments.Params{
		PerClass: *perClass,
		Days:     *days,
		Queries:  *queries,
		Seed:     *seed,
		Fast:     !*slow,
	}.WithDefaults()

	if *query {
		if err := runQuery(*benchOut); err != nil {
			fmt.Fprintf(os.Stderr, "query: %v\n", err)
			os.Exit(1)
		}
		return
	}

	if *shard {
		if err := runShard(p, *workers, *benchOut); err != nil {
			fmt.Fprintf(os.Stderr, "shard: %v\n", err)
			os.Exit(1)
		}
		return
	}

	if *neighbors {
		if err := runNeighbors(*benchOut); err != nil {
			fmt.Fprintf(os.Stderr, "neighbors: %v\n", err)
			os.Exit(1)
		}
		return
	}

	if *memory {
		ladder, err := parseDeviceLadder(*memoryDevices)
		if err != nil {
			fmt.Fprintf(os.Stderr, "memory: %v\n", err)
			os.Exit(1)
		}
		if err := runMemory(ladder, *benchOut); err != nil {
			fmt.Fprintf(os.Stderr, "memory: %v\n", err)
			os.Exit(1)
		}
		return
	}

	if *incr {
		ladder, err := parseDeviceLadder(*incrDevices)
		if err != nil {
			fmt.Fprintf(os.Stderr, "incr: %v\n", err)
			os.Exit(1)
		}
		if err := runIncr(ladder, *benchOut); err != nil {
			fmt.Fprintf(os.Stderr, "incr: %v\n", err)
			os.Exit(1)
		}
		return
	}

	if *persist {
		if err := runPersist(*persistDir, *persistEvents, *workers, *persistFsync, *benchOut); err != nil {
			fmt.Fprintf(os.Stderr, "persist: %v\n", err)
			os.Exit(1)
		}
		return
	}

	if *throughput {
		if err := runThroughput(p, *workers, *deadline, *benchOut); err != nil {
			fmt.Fprintf(os.Stderr, "throughput: %v\n", err)
			os.Exit(1)
		}
		return
	}

	drivers := experiments.All()
	if *expName != "" {
		d, ok := experiments.Find(*expName)
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown experiment %q; use -list\n", *expName)
			os.Exit(2)
		}
		drivers = []experiments.Driver{d}
	}

	for _, d := range drivers {
		start := time.Now()
		tables, err := d.Run(p)
		if err != nil {
			fmt.Fprintf(os.Stderr, "experiment %s failed: %v\n", d.Name, err)
			os.Exit(1)
		}
		for _, t := range tables {
			t.Fprint(os.Stdout)
		}
		fmt.Printf("[%s completed in %v]\n\n", d.Name, time.Since(start).Round(time.Millisecond))
	}
}

// throughputReport is the machine-readable result of -throughput, emitted
// as BENCH_throughput.json for the CI perf-tracking pipeline.
type throughputReport struct {
	Name    string          `json:"name"`
	Events  int             `json:"events"`
	Devices int             `json:"devices"`
	Queries int             `json:"queries"`
	Rows    []throughputRow `json:"rows"`
	// Caches snapshots the caching layer after the measured runs: sizes
	// must sit at or below capacity (bounded memory), and the hit counters
	// show how much of the served throughput the caches absorbed.
	Caches cachesReport `json:"caches"`
}

type throughputRow struct {
	Workers int     `json:"workers"`
	Seconds float64 `json:"seconds"`
	// QueriesPerSec counts successfully answered queries only: queries the
	// engine shed on deadline are accounted in DeadlineExceeded, not
	// folded into served throughput (and hard failures abort the run).
	QueriesPerSec    float64 `json:"queries_per_sec"`
	Speedup          float64 `json:"speedup"`
	OK               int     `json:"ok"`
	DeadlineExceeded int     `json:"deadline_exceeded"`
}

// cacheTierReport mirrors locater.CacheTierStats in the benchmark JSON.
type cacheTierReport struct {
	Size          int   `json:"size"`
	Capacity      int   `json:"capacity"`
	Hits          int64 `json:"hits"`
	Misses        int64 `json:"misses"`
	Evictions     int64 `json:"evictions"`
	Invalidations int64 `json:"invalidations"`
}

type cachesReport struct {
	GraphEdges   int             `json:"graph_edges"`
	Affinity     cacheTierReport `json:"affinity"`
	CoarseModels cacheTierReport `json:"coarse_models"`
	Results      cacheTierReport `json:"results"`
}

func cacheTierReportOf(t locater.CacheTierStats) cacheTierReport {
	return cacheTierReport{
		Size:          t.Size,
		Capacity:      t.Capacity,
		Hits:          t.Hits,
		Misses:        t.Misses,
		Evictions:     t.Evictions,
		Invalidations: t.Invalidations,
	}
}

func cachesReportOf(cs locater.CacheStats) cachesReport {
	return cachesReport{
		GraphEdges:   cs.GraphEdges,
		Affinity:     cacheTierReportOf(cs.Affinity),
		CoarseModels: cacheTierReportOf(cs.CoarseModels),
		Results:      cacheTierReportOf(cs.Results),
	}
}

// runThroughput measures the concurrent query engine: the same warmed
// workload is answered through System.LocateBatch with 1, 2, 4, ...
// workers, and the run reports queries/sec plus the speedup over a single
// worker (the serialized baseline). A non-zero deadline bounds every batch
// through LocateBatchContext; queries the engine sheds on deadline are
// reported in their own column instead of failing the measurement.
func runThroughput(p experiments.Params, maxWorkers int, deadline time.Duration, benchOut string) error {
	if maxWorkers < 1 {
		maxWorkers = runtime.GOMAXPROCS(0)
	}
	// Build + ingest + warm through the same helper the root benchmarks
	// use, so -throughput and `go test -bench` measure one steady state.
	warmStart := time.Now()
	sys, batch, err := experiments.WarmedSystem(p, locater.DependentVariant)
	if err != nil {
		return err
	}
	fmt.Printf("workload: %d events, %d devices, %d queries (build+warm-up %v)\n",
		sys.NumEvents(), sys.NumDevices(), len(batch), time.Since(warmStart).Round(time.Millisecond))
	if deadline > 0 {
		fmt.Printf("per-batch deadline: %v\n", deadline)
	}
	fmt.Printf("%-8s %12s %12s %9s %9s %9s\n", "workers", "total", "queries/sec", "speedup", "ok", "deadline")

	// Pool sizes: powers of two up to maxWorkers, plus maxWorkers itself.
	var sizes []int
	for w := 1; w < maxWorkers; w *= 2 {
		sizes = append(sizes, w)
	}
	sizes = append(sizes, maxWorkers)

	rep := throughputReport{
		Name:    "throughput",
		Events:  sys.NumEvents(),
		Devices: sys.NumDevices(),
		Queries: len(batch),
	}
	base := 0.0
	for _, w := range sizes {
		elapsed, ok, deadlined, err := timeBatch(sys, batch, w, deadline)
		if err != nil {
			return fmt.Errorf("workers=%d: %w", w, err)
		}
		qps := float64(ok) / elapsed.Seconds()
		if w == 1 {
			base = qps
		}
		fmt.Printf("%-8d %12v %12.0f %8.2fx %9d %9d\n",
			w, elapsed.Round(time.Millisecond), qps, qps/base, ok, deadlined)
		rep.Rows = append(rep.Rows, throughputRow{
			Workers:          w,
			Seconds:          elapsed.Seconds(),
			QueriesPerSec:    qps,
			Speedup:          qps / base,
			OK:               ok,
			DeadlineExceeded: deadlined,
		})
	}
	cs := sys.CacheStats()
	rep.Caches = cachesReportOf(cs)
	fmt.Printf("caches: graph %d edges; affinity %d/%d (%d hits, %d misses); models %d/%d; results %d/%d (%d hits)\n",
		cs.GraphEdges,
		cs.Affinity.Size, cs.Affinity.Capacity, cs.Affinity.Hits, cs.Affinity.Misses,
		cs.CoarseModels.Size, cs.CoarseModels.Capacity,
		cs.Results.Size, cs.Results.Capacity, cs.Results.Hits)
	return writeBenchJSON(benchOut, "BENCH_throughput.json", rep)
}

// timeBatch runs the batch a few times at the given pool size and returns
// the fastest wall-clock time (minimum-of-3, the usual noise filter) with
// its ok/deadline-exceeded split. Deadline shed is an expected outcome of a
// bounded run and is reported, not conflated with errors; any other
// per-query error still fails the measurement — a batch that errors must
// not be reported as served throughput.
func timeBatch(sys *locater.System, batch []locater.Query, workers int, deadline time.Duration) (best time.Duration, ok, deadlined int, err error) {
	for rep := 0; rep < 3; rep++ {
		ctx := context.Background()
		cancel := context.CancelFunc(func() {})
		if deadline > 0 {
			ctx, cancel = context.WithTimeout(ctx, deadline)
		}
		start := time.Now()
		results := sys.LocateBatchContext(ctx, batch, workers)
		d := time.Since(start)
		cancel()
		repOK, repDeadlined := 0, 0
		for _, r := range results {
			switch {
			case r.Err == nil:
				repOK++
			case errors.Is(r.Err, locater.ErrDeadlineExceeded):
				repDeadlined++
			default:
				return 0, 0, 0, fmt.Errorf("query (%s, %v): %w", r.Query.Device, r.Query.Time, r.Err)
			}
		}
		if rep == 0 || d < best {
			best, ok, deadlined = d, repOK, repDeadlined
		}
	}
	return best, ok, deadlined, nil
}
