// Command locater-bench regenerates the paper's evaluation tables and
// figures (Section 6) over simulated workloads and prints them in the same
// row/series structure the paper reports.
//
// Usage:
//
//	locater-bench                 # run every experiment
//	locater-bench -exp table3     # run one experiment
//	locater-bench -list           # list experiments
//	locater-bench -per-class 8 -days 70 -queries 500 -seed 7
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"locater/internal/experiments"
)

func main() {
	var (
		expName  = flag.String("exp", "", "experiment to run (default: all); see -list")
		list     = flag.Bool("list", false, "list experiments and exit")
		perClass = flag.Int("per-class", 0, "people per predictability class (default 6)")
		days     = flag.Int("days", 0, "simulated days (default 70)")
		queries  = flag.Int("queries", 0, "queries per experiment (default 400)")
		seed     = flag.Int64("seed", 0, "random seed (default 1)")
		slow     = flag.Bool("faithful", false, "verbatim Algorithm 1 (one promotion per self-training round; slower)")
	)
	flag.Parse()

	if *list {
		for _, d := range experiments.All() {
			fmt.Printf("%-8s %s\n", d.Name, d.Description)
		}
		return
	}

	p := experiments.Params{
		PerClass: *perClass,
		Days:     *days,
		Queries:  *queries,
		Seed:     *seed,
		Fast:     !*slow,
	}.WithDefaults()

	drivers := experiments.All()
	if *expName != "" {
		d, ok := experiments.Find(*expName)
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown experiment %q; use -list\n", *expName)
			os.Exit(2)
		}
		drivers = []experiments.Driver{d}
	}

	for _, d := range drivers {
		start := time.Now()
		tables, err := d.Run(p)
		if err != nil {
			fmt.Fprintf(os.Stderr, "experiment %s failed: %v\n", d.Name, err)
			os.Exit(1)
		}
		for _, t := range tables {
			t.Fprint(os.Stdout)
		}
		fmt.Printf("[%s completed in %v]\n\n", d.Name, time.Since(start).Round(time.Millisecond))
	}
}
