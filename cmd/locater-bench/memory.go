package main

import (
	"fmt"
	"math/rand"
	"os"
	"runtime"
	"strconv"
	"strings"
	"time"

	"locater"
	"locater/internal/space"
)

// The memory ladder's workload shape: every device carries ~memEventsPerDev
// events over two weeks, and the segmented arm seals at 32 events, so most
// of each log is sealed history — the case the columnar layout exists for.
const (
	memEventsPerDev  = 96
	memSegMaxEvents  = 32
	memQueries       = 160
	memSpanDays      = 14
	memAPs           = 16
	memRoomsPerAP    = 3
	memMaxNeighbors  = 24
	memModelCacheCap = 16384
	// memLatencyCacheSegs sizes the latency arms' decoded-segment cache to
	// the probe set's working set (~queries × (1 + MaxNeighbors) devices ×
	// segments/device, with slack), so warm passes measure the layout's scan
	// cost, not cache thrash.
	memLatencyCacheSegs = 32768
)

// memoryReport is the machine-readable result of -memory, emitted as
// BENCH_memory.json. CI gates on it: every row must be byte-identical
// between the arms, recovery must reproduce the pre-crash answers, and the
// largest rung must show the headline memory reduction without a cold-query
// regression.
type memoryReport struct {
	Name             string      `json:"name"`
	EventsPerDevice  int         `json:"events_per_device"`
	SegmentMaxEvents int         `json:"segment_max_events"`
	Rows             []memoryRow `json:"rows"`
	// RecoveryIdentical reports the crash-recovery equivalence check: a
	// durable segmented system is checkpointed mid-stream, "crashes", and
	// the recovered system (manifest + cold tier + WAL tail) must answer
	// every probe query exactly as the live one did.
	RecoveryIdentical bool `json:"recovery_identical"`
}

type memoryRow struct {
	Devices int `json:"devices"`
	Events  int `json:"events"`
	// BytesPerEvent* is resident heap per ingested event (occupancy index
	// disabled on both arms — it is layout-independent and would drown the
	// store's own footprint). Reduction = slices / segments.
	BytesPerEventSlices   float64 `json:"bytes_per_event_slices"`
	BytesPerEventSegments float64 `json:"bytes_per_event_segments"`
	Reduction             float64 `json:"reduction"`
	// Cold latencies are the end-to-end first-query cost on a fresh
	// system: models untrained and the decoded-segment cache invalidated,
	// so the pass pays gap extraction, model training, and (on the
	// segmented arm) every page-in. Warm latencies follow on the
	// now-trained, now-cached system (best of two passes).
	ColdUsSlices   float64 `json:"cold_us_slices"`
	ColdUsSegments float64 `json:"cold_us_segments"`
	WarmUsSlices   float64 `json:"warm_us_slices"`
	WarmUsSegments float64 `json:"warm_us_segments"`
	ColdRatio      float64 `json:"cold_ratio"`
	// Identical reports the byte-identity gate: every Locate answer on the
	// segmented arm equals the plain-slice arm's, field for field.
	Identical bool `json:"identical"`
}

// memBuilding builds the synthetic campus the ladder runs on: memAPs
// regions of memRoomsPerAP rooms each, with adjacent regions overlapping by
// one room so fine-grained disambiguation has real work.
func memBuilding() (*space.Building, error) {
	var rooms []space.Room
	var aps []space.AccessPoint
	for a := 0; a < memAPs; a++ {
		cover := make([]space.RoomID, 0, memRoomsPerAP+1)
		for r := 0; r < memRoomsPerAP; r++ {
			id := space.RoomID(fmt.Sprintf("r%02d-%d", a, r))
			rooms = append(rooms, space.Room{ID: id})
			cover = append(cover, id)
		}
		if a > 0 {
			cover = append(cover, space.RoomID(fmt.Sprintf("r%02d-0", a-1)))
		}
		aps = append(aps, space.AccessPoint{ID: space.APID(fmt.Sprintf("ap%02d", a)), Coverage: cover})
	}
	return space.NewBuilding(space.Config{Name: "mem-ladder", Rooms: rooms, AccessPoints: aps})
}

var memBase = time.Date(2026, 3, 2, 0, 0, 0, 0, time.UTC)

// memIngest streams the deterministic workload for devices [lo, hi) into
// sys in per-device batches: mostly time-ordered with occasional
// out-of-order swaps, so segments overlap the way real association logs
// make them. Batches are a pure function of the device index, which is what
// lets the recovery check regenerate the exact post-checkpoint tail.
func memIngest(sys *locater.System, lo, hi int) (int, error) {
	total := 0
	batch := make([]locater.Event, 0, memEventsPerDev)
	for d := lo; d < hi; d++ {
		rng := rand.New(rand.NewSource(int64(d)*2654435761 + 17))
		dev := locater.DeviceID(fmt.Sprintf("mem%06d", d))
		home := rng.Intn(memAPs)
		batch = batch[:0]
		for i := 0; i < memEventsPerDev; i++ {
			// A workday rhythm: events cluster in business hours, hopping
			// between the home AP and a few neighbors.
			day := i * memSpanDays / memEventsPerDev
			tod := 9*time.Hour + time.Duration(rng.Int63n(int64(9*time.Hour)))
			ap := home
			if rng.Intn(4) == 0 {
				ap = (home + 1 + rng.Intn(3)) % memAPs
			}
			batch = append(batch, locater.Event{
				Device: dev,
				Time:   memBase.Add(time.Duration(day)*24*time.Hour + tod),
				AP:     locater.APID(fmt.Sprintf("ap%02d", ap)),
			})
		}
		// Late arrivals: swap a few events backwards so some cross seal
		// boundaries out of order.
		for i := 0; i < 4; i++ {
			a, b := rng.Intn(len(batch)), rng.Intn(len(batch))
			batch[a], batch[b] = batch[b], batch[a]
		}
		if err := sys.Ingest(batch); err != nil {
			return 0, err
		}
		total += len(batch)
	}
	return total, nil
}

// memConfig builds one arm's configuration. cacheSegs sizes the
// decoded-segment cache: the memory ladder passes 0 (the default quiescent
// footprint — what an idle deployment holds), while the latency ladder
// sizes it to the probe set's working set (memLatencyCacheSegs), which is
// precisely what the SegmentCacheSize knob exists for. Entries are
// allocated on use, so an oversized capacity costs only what the workload
// actually touches.
func memConfig(b *space.Building, segmented, occupancy bool, cacheSegs int) locater.Config {
	cfg := locater.Config{
		Building:           b,
		MaxNeighbors:       memMaxNeighbors,
		ModelCacheSize:     memModelCacheCap,
		SegmentCacheSize:   cacheSegs,
		HistoryDays:        memSpanDays,
		PromotionsPerRound: 8,
		// Neighbor discovery resolves each candidate's region through the
		// coarse stage, so a cold query at fleet scale trains thousands of
		// candidate models. A small gap cap keeps each training cheap —
		// identically in both arms, so the ratios the gates check are
		// unaffected while the ladder stays CI-sized.
		MaxTrainingGaps:       12,
		DisableOccupancyIndex: !occupancy,
	}
	if segmented {
		cfg.SegmentMaxEvents = memSegMaxEvents
	} else {
		cfg.SegmentMaxEvents = -1
	}
	return cfg
}

// heapLive returns the post-GC live heap (HeapAlloc: reachable objects
// only, no span-fragmentation noise), settled over two cycles so freshly
// unreachable ingest scratch does not count against either arm.
func heapLive() uint64 {
	runtime.GC()
	runtime.GC()
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return ms.HeapAlloc
}

// memMeasureBytes builds one arm with the occupancy index off and returns
// resident bytes per event.
func memMeasureBytes(b *space.Building, n int, segmented bool) (float64, error) {
	before := heapLive()
	sys, err := locater.New(memConfig(b, segmented, false, 0))
	if err != nil {
		return 0, err
	}
	events, err := memIngest(sys, 0, n)
	if err != nil {
		return 0, err
	}
	perEvent := float64(heapLive()-before) / float64(events)
	runtime.KeepAlive(sys)
	return perEvent, nil
}

// memQueryCount scales the probe set down as the fleet grows: per-query
// cost rises with the device count (neighbor discovery surfaces more
// candidates to rank), so a fixed probe count would make the large rungs
// dominate wall-clock for no statistical gain.
func memQueryCount(n int) int {
	switch {
	case n <= 2000:
		return memQueries
	case n <= 10000:
		return 48
	default:
		// Each 50k-device cold query averages over thousands of candidate
		// trainings, so per-query variance is already low; a small probe set
		// keeps the rung's mean stable and the rung CI-sized.
		return 16
	}
}

func memQuerySet(n int) []locater.Query {
	rng := rand.New(rand.NewSource(99))
	count := memQueryCount(n)
	qs := make([]locater.Query, 0, count)
	for i := 0; i < count; i++ {
		d := rng.Intn(n)
		qs = append(qs, locater.Query{
			Device: locater.DeviceID(fmt.Sprintf("mem%06d", d)),
			Time:   memBase.Add(time.Duration(rng.Intn(memSpanDays))*24*time.Hour + 10*time.Hour + time.Duration(rng.Int63n(int64(7*time.Hour)))),
		})
	}
	return qs
}

// memRunQueries answers the probe set and returns mean µs/query plus the
// results for the identity gates. Any query error fails the measurement.
func memRunQueries(sys *locater.System, qs []locater.Query) (float64, []locater.Result, error) {
	start := time.Now()
	batch := sys.LocateBatch(qs, runtime.GOMAXPROCS(0))
	elapsed := time.Since(start)
	out := make([]locater.Result, len(batch))
	for i, r := range batch {
		if r.Err != nil {
			return 0, nil, fmt.Errorf("query (%s, %v): %w", r.Query.Device, r.Query.Time, r.Err)
		}
		out[i] = r.Result
	}
	return float64(elapsed.Microseconds()) / float64(len(qs)), out, nil
}

// memMeasureLatency builds one occupancy-enabled arm and runs the probe
// protocol. Cold is the honest end-to-end first-query cost: models
// untrained and the decoded-segment cache invalidated, so the pass pays
// gap extraction over full histories, model training, AND (on the
// segmented arm) every page-in — the exact path a query takes after
// recovery or under memory pressure. Warm passes (best-of-2) follow on the
// now-trained, now-cached system.
func memMeasureLatency(b *space.Building, n int, segmented bool, qs []locater.Query) (coldUs, warmUs float64, res []locater.Result, err error) {
	sys, err := locater.New(memConfig(b, segmented, true, memLatencyCacheSegs))
	if err != nil {
		return 0, 0, nil, err
	}
	if _, err := memIngest(sys, 0, n); err != nil {
		return 0, 0, nil, err
	}
	sys.InvalidateSegmentCache() // drop the seal-time pre-warm: cold means cold
	if coldUs, res, err = memRunQueries(sys, qs); err != nil {
		return 0, 0, nil, err
	}
	for i := 0; i < 2; i++ {
		us, _, err := memRunQueries(sys, qs)
		if err != nil {
			return 0, 0, nil, err
		}
		if i == 0 || us < warmUs {
			warmUs = us
		}
	}
	return coldUs, warmUs, res, nil
}

func memResultsIdentical(a, b []locater.Result) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// memRecoveryCheck runs the crash-recovery equivalence gate on a durable
// segmented system: checkpoint mid-stream (publishing the only manifest),
// keep ingesting past more seal boundaries, capture the live answers, then
// reopen the directory without Close — recovery from manifest + cold tier +
// WAL tail — and require identical answers with a cold segment cache.
func memRecoveryCheck(b *space.Building, n int, qs []locater.Query) (bool, error) {
	dir, err := os.MkdirTemp("", "locater-membench-*")
	if err != nil {
		return false, err
	}
	defer os.RemoveAll(dir)
	cfg := memConfig(b, true, true, memLatencyCacheSegs)
	live, err := locater.Open(dir, cfg, locater.PersistOptions{})
	if err != nil {
		return false, err
	}
	cut := n * 4 / 5
	if _, err := memIngest(live, 0, cut); err != nil {
		return false, err
	}
	if err := live.Checkpoint(); err != nil {
		return false, err
	}
	// The tail: the remaining devices land after the only manifest, so
	// recovery must stitch manifest + cold tier + WAL tail back together.
	if _, err := memIngest(live, cut, n); err != nil {
		return false, err
	}
	_, liveRes, err := memRunQueries(live, qs)
	if err != nil {
		return false, err
	}
	// Crash: reopen without Close. The recovered system pages everything
	// back in from the cold tier.
	rec, err := locater.Open(dir, cfg, locater.PersistOptions{})
	if err != nil {
		return false, err
	}
	defer rec.Close()
	if rec.NumEvents() != live.NumEvents() {
		return false, fmt.Errorf("recovered %d events, live had %d", rec.NumEvents(), live.NumEvents())
	}
	rec.InvalidateSegmentCache()
	_, recRes, err := memRunQueries(rec, qs)
	if err != nil {
		return false, err
	}
	return memResultsIdentical(liveRes, recRes), nil
}

// parseDeviceLadder parses the -memory-devices flag ("1000,10000,50000").
func parseDeviceLadder(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		n, err := strconv.Atoi(part)
		if err != nil || n < 1 {
			return nil, fmt.Errorf("bad device count %q", part)
		}
		out = append(out, n)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("empty device ladder")
	}
	return out, nil
}

// runMemory is the -memory mode: the resident-bytes + cold/warm-latency
// ladder comparing the segmented store against the plain-slice layout, with
// byte-identity and crash-recovery gates. The headline gates — ≥4× memory
// reduction and ≤1.1× cold-query ratio at the largest rung — are enforced
// here, so a regression fails the command, not just the CI jq step.
func runMemory(ladder []int, outDir string) error {
	b, err := memBuilding()
	if err != nil {
		return err
	}
	rep := memoryReport{
		Name:             "memory",
		EventsPerDevice:  memEventsPerDev,
		SegmentMaxEvents: memSegMaxEvents,
	}
	fmt.Printf("%-9s %9s %12s %12s %10s %11s %11s %10s %10s\n",
		"devices", "events", "B/ev slices", "B/ev segs", "reduction", "cold-sl µs", "cold-sg µs", "ratio", "identical")
	for _, n := range ladder {
		phase := time.Now()
		bpeSlices, err := memMeasureBytes(b, n, false)
		if err != nil {
			return fmt.Errorf("devices=%d slices memory: %w", n, err)
		}
		bpeSegments, err := memMeasureBytes(b, n, true)
		if err != nil {
			return fmt.Errorf("devices=%d segments memory: %w", n, err)
		}
		fmt.Printf("# devices=%d memory arms done in %.0fs\n", n, time.Since(phase).Seconds())
		qs := memQuerySet(n)
		phase = time.Now()
		coldSl, warmSl, resSl, err := memMeasureLatency(b, n, false, qs)
		if err != nil {
			return fmt.Errorf("devices=%d slices latency: %w", n, err)
		}
		fmt.Printf("# devices=%d slices latency arm (%d queries) done in %.0fs\n", n, len(qs), time.Since(phase).Seconds())
		phase = time.Now()
		coldSg, warmSg, resSg, err := memMeasureLatency(b, n, true, qs)
		if err != nil {
			return fmt.Errorf("devices=%d segments latency: %w", n, err)
		}
		fmt.Printf("# devices=%d segments latency arm done in %.0fs\n", n, time.Since(phase).Seconds())
		row := memoryRow{
			Devices:               n,
			Events:                n * memEventsPerDev,
			BytesPerEventSlices:   bpeSlices,
			BytesPerEventSegments: bpeSegments,
			Reduction:             bpeSlices / bpeSegments,
			ColdUsSlices:          coldSl,
			ColdUsSegments:        coldSg,
			WarmUsSlices:          warmSl,
			WarmUsSegments:        warmSg,
			ColdRatio:             coldSg / coldSl,
			Identical:             memResultsIdentical(resSl, resSg),
		}
		rep.Rows = append(rep.Rows, row)
		fmt.Printf("%-9d %9d %12.1f %12.1f %9.2fx %11.0f %11.0f %10.3f %10v\n",
			n, row.Events, row.BytesPerEventSlices, row.BytesPerEventSegments,
			row.Reduction, row.ColdUsSlices, row.ColdUsSegments, row.ColdRatio, row.Identical)
	}

	recN := ladder[0]
	rep.RecoveryIdentical, err = memRecoveryCheck(b, recN, memQuerySet(recN))
	if err != nil {
		return fmt.Errorf("recovery check: %w", err)
	}
	fmt.Printf("recovery-identical (%d devices, crash after checkpoint + tail): %v\n", recN, rep.RecoveryIdentical)

	if err := writeBenchJSON(outDir, "BENCH_memory.json", rep); err != nil {
		return err
	}

	// Gates. Identity and recovery always hold; the headline memory and
	// cold-latency bounds apply at the ladder's largest rung.
	for _, row := range rep.Rows {
		if !row.Identical {
			return fmt.Errorf("devices=%d: segmented Locate answers diverge from the slice arm", row.Devices)
		}
	}
	if !rep.RecoveryIdentical {
		return fmt.Errorf("crash recovery answers diverge from the live system")
	}
	last := rep.Rows[len(rep.Rows)-1]
	if last.Reduction < 4 {
		return fmt.Errorf("devices=%d: memory reduction %.2fx, want >= 4x", last.Devices, last.Reduction)
	}
	if last.ColdRatio > 1.1 {
		return fmt.Errorf("devices=%d: cold-query ratio %.3f, want <= 1.1", last.Devices, last.ColdRatio)
	}
	return nil
}
