package main

import (
	"fmt"
	"math/rand"
	"os"
	"runtime"
	"strconv"
	"strings"
	"time"

	"locater"
	"locater/internal/space"
)

// The memory ladder's workload shape: every device carries ~memEventsPerDev
// events over two weeks, and the segmented arm seals at 64 events — an even
// divisor of the per-device history, so EVERY event is sealed history and
// the arms compare pure layouts with no mutable-head contribution.
const (
	memEventsPerDev  = 128
	memSegMaxEvents  = 64
	memQueries       = 160
	memSpanDays      = 14
	memAPs           = 16
	memRoomsPerAP    = 3
	memMaxNeighbors  = 24
	memModelCacheCap = 16384
	// memBlockEvents is the block arm's intra-segment block size: 8 blocks
	// per 64-event segment, small enough that a point lookup's 1–2-block
	// neighborhood decodes a fraction of the segment (the decode-reduction
	// gate), large enough that per-block CRC/trailer overhead stays a small
	// share of the payload (~2 B/event; the production default of 64-event
	// blocks costs ~0.3).
	memBlockEvents = 8
	// memLatencyCacheSegs sizes the latency arms' decoded-block cache to the
	// probe set's working set in SEGMENTS (~queries × (1 + MaxNeighbors)
	// devices × segments/device, with slack); memCacheEntries scales it to
	// block entries for the arm's block size, so warm passes measure the
	// layout's scan cost, not cache thrash.
	memLatencyCacheSegs = 32768
)

// memCacheEntries converts the segment-denominated cache budget into block
// entries for one arm's block size (whole-segment arms hold one block per
// segment).
func memCacheEntries(blockEvents int) int {
	if blockEvents <= 0 {
		return memLatencyCacheSegs
	}
	per := (memSegMaxEvents + blockEvents - 1) / blockEvents
	return memLatencyCacheSegs * per
}

// memoryReport is the machine-readable result of -memory, emitted as
// BENCH_memory.json. CI gates on it: every row must be byte-identical
// between the arms, recovery must reproduce the pre-crash answers, and the
// largest rung must show the headline memory reduction without a cold-query
// regression.
type memoryReport struct {
	Name               string      `json:"name"`
	EventsPerDevice    int         `json:"events_per_device"`
	SegmentMaxEvents   int         `json:"segment_max_events"`
	SegmentBlockEvents int         `json:"segment_block_events"`
	Rows               []memoryRow `json:"rows"`
	// RecoveryIdentical reports the crash-recovery equivalence check: a
	// durable segmented system is checkpointed mid-stream, "crashes", and
	// the recovered system (manifest + cold tier + WAL tail) must answer
	// every probe query exactly as the live one did.
	RecoveryIdentical bool `json:"recovery_identical"`
}

type memoryRow struct {
	Devices int `json:"devices"`
	Events  int `json:"events"`
	// BytesPerEvent* is resident heap per ingested event (occupancy index
	// disabled on both arms — it is layout-independent and would drown the
	// store's own footprint). Reduction = slices / segments.
	BytesPerEventSlices   float64 `json:"bytes_per_event_slices"`
	BytesPerEventSegments float64 `json:"bytes_per_event_segments"`
	Reduction             float64 `json:"reduction"`
	// Cold latencies are the end-to-end first-query cost on a fresh
	// system: models untrained and the decoded-segment cache invalidated,
	// so the pass pays gap extraction, model training, and (on the
	// segmented arm) every page-in. Warm latencies follow on the
	// now-trained, now-cached system (best of two passes).
	ColdUsSlices   float64 `json:"cold_us_slices"`
	ColdUsSegments float64 `json:"cold_us_segments"`
	WarmUsSlices   float64 `json:"warm_us_slices"`
	WarmUsSegments float64 `json:"warm_us_segments"`
	ColdRatio      float64 `json:"cold_ratio"`
	// The whole-segment arm is the pre-block baseline (SegmentBlockEvents =
	// -1, one block per segment, no index): ColdUsWhole is its cold pass,
	// ColdBlockRatio = block cold / whole cold — the block layout must hold
	// cold-latency parity with whole-segment decode (≤ 1.15; paired
	// in-process runs measure 1.00–1.08 at 50k, the allowance covers
	// single-shot run noise). The whole arm runs first so shared-process
	// heap growth cannot systematically flatter it.
	ColdUsWhole    float64 `json:"cold_us_whole"`
	ColdBlockRatio float64 `json:"cold_block_ratio"`
	// BytesPerLookup* is encoded bytes decoded per segmented point lookup
	// during the cold pass (cache misses only); DecodeReduction = whole /
	// block, the tentpole's ≥4× headline.
	BytesPerLookupWhole float64 `json:"bytes_per_lookup_whole"`
	BytesPerLookupBlock float64 `json:"bytes_per_lookup_block"`
	DecodeReduction     float64 `json:"decode_reduction"`
	// Identical reports the byte-identity gate: every Locate answer on the
	// segmented (block) arm and the whole-segment arm equals the plain-slice
	// arm's, field for field.
	Identical bool `json:"identical"`
}

// memBuilding builds the synthetic campus the ladder runs on: memAPs
// regions of memRoomsPerAP rooms each, with adjacent regions overlapping by
// one room so fine-grained disambiguation has real work.
func memBuilding() (*space.Building, error) {
	var rooms []space.Room
	var aps []space.AccessPoint
	for a := 0; a < memAPs; a++ {
		cover := make([]space.RoomID, 0, memRoomsPerAP+1)
		for r := 0; r < memRoomsPerAP; r++ {
			id := space.RoomID(fmt.Sprintf("r%02d-%d", a, r))
			rooms = append(rooms, space.Room{ID: id})
			cover = append(cover, id)
		}
		if a > 0 {
			cover = append(cover, space.RoomID(fmt.Sprintf("r%02d-0", a-1)))
		}
		aps = append(aps, space.AccessPoint{ID: space.APID(fmt.Sprintf("ap%02d", a)), Coverage: cover})
	}
	return space.NewBuilding(space.Config{Name: "mem-ladder", Rooms: rooms, AccessPoints: aps})
}

var memBase = time.Date(2026, 3, 2, 0, 0, 0, 0, time.UTC)

// memIngest streams the deterministic workload for devices [lo, hi) into
// sys in per-device batches: mostly time-ordered with occasional
// out-of-order swaps, so segments overlap the way real association logs
// make them. Batches are a pure function of the device index, which is what
// lets the recovery check regenerate the exact post-checkpoint tail.
func memIngest(sys *locater.System, lo, hi int) (int, error) {
	total := 0
	batch := make([]locater.Event, 0, memEventsPerDev)
	for d := lo; d < hi; d++ {
		rng := rand.New(rand.NewSource(int64(d)*2654435761 + 17))
		dev := locater.DeviceID(fmt.Sprintf("mem%06d", d))
		home := rng.Intn(memAPs)
		batch = batch[:0]
		for i := 0; i < memEventsPerDev; i++ {
			// A workday rhythm: events cluster in business hours, hopping
			// between the home AP and a few neighbors.
			day := i * memSpanDays / memEventsPerDev
			tod := 9*time.Hour + time.Duration(rng.Int63n(int64(9*time.Hour)))
			ap := home
			if rng.Intn(4) == 0 {
				ap = (home + 1 + rng.Intn(3)) % memAPs
			}
			batch = append(batch, locater.Event{
				Device: dev,
				Time:   memBase.Add(time.Duration(day)*24*time.Hour + tod),
				AP:     locater.APID(fmt.Sprintf("ap%02d", ap)),
			})
		}
		// Late arrivals: swap a few events backwards so some cross seal
		// boundaries out of order.
		for i := 0; i < 4; i++ {
			a, b := rng.Intn(len(batch)), rng.Intn(len(batch))
			batch[a], batch[b] = batch[b], batch[a]
		}
		if err := sys.Ingest(batch); err != nil {
			return 0, err
		}
		total += len(batch)
	}
	return total, nil
}

// memConfig builds one arm's configuration. cacheSegs sizes the
// decoded-segment cache: the memory ladder passes 0 (the default quiescent
// footprint — what an idle deployment holds), while the latency ladder
// sizes it to the probe set's working set (memLatencyCacheSegs), which is
// precisely what the SegmentCacheSize knob exists for. Entries are
// allocated on use, so an oversized capacity costs only what the workload
// actually touches.
func memConfig(b *space.Building, segmented bool, blockEvents int, occupancy bool, cacheEntries int) locater.Config {
	cfg := locater.Config{
		Building:           b,
		MaxNeighbors:       memMaxNeighbors,
		ModelCacheSize:     memModelCacheCap,
		SegmentBlockEvents: blockEvents,
		SegmentCacheSize:   cacheEntries,
		HistoryDays:        memSpanDays,
		PromotionsPerRound: 8,
		// Neighbor discovery resolves each candidate's region through the
		// coarse stage, so a cold query at fleet scale trains thousands of
		// candidate models. A small gap cap keeps each training cheap —
		// identically in both arms, so the ratios the gates check are
		// unaffected while the ladder stays CI-sized.
		MaxTrainingGaps:       12,
		DisableOccupancyIndex: !occupancy,
	}
	if segmented {
		cfg.SegmentMaxEvents = memSegMaxEvents
	} else {
		cfg.SegmentMaxEvents = -1
	}
	return cfg
}

// heapLive returns the post-GC live heap (HeapAlloc: reachable objects
// only, no span-fragmentation noise), settled over two cycles so freshly
// unreachable ingest scratch does not count against either arm.
func heapLive() uint64 {
	runtime.GC()
	runtime.GC()
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return ms.HeapAlloc
}

// memMeasureBytes builds one arm with the occupancy index off and returns
// resident bytes per event.
func memMeasureBytes(b *space.Building, n int, segmented bool) (float64, error) {
	before := heapLive()
	sys, err := locater.New(memConfig(b, segmented, memBlockEvents, false, 0))
	if err != nil {
		return 0, err
	}
	events, err := memIngest(sys, 0, n)
	if err != nil {
		return 0, err
	}
	perEvent := float64(heapLive()-before) / float64(events)
	runtime.KeepAlive(sys)
	return perEvent, nil
}

// memQueryCount scales the probe set down as the fleet grows: per-query
// cost rises with the device count (neighbor discovery surfaces more
// candidates to rank), so a fixed probe count would make the large rungs
// dominate wall-clock for no statistical gain.
func memQueryCount(n int) int {
	switch {
	case n <= 2000:
		return memQueries
	case n <= 10000:
		return 48
	default:
		// Each 50k-device cold query averages over thousands of candidate
		// trainings, so per-query variance is already low; a small probe set
		// keeps the rung's mean stable and the rung CI-sized.
		return 16
	}
}

func memQuerySet(n int) []locater.Query {
	rng := rand.New(rand.NewSource(99))
	count := memQueryCount(n)
	qs := make([]locater.Query, 0, count)
	for i := 0; i < count; i++ {
		d := rng.Intn(n)
		qs = append(qs, locater.Query{
			Device: locater.DeviceID(fmt.Sprintf("mem%06d", d)),
			Time:   memBase.Add(time.Duration(rng.Intn(memSpanDays))*24*time.Hour + 10*time.Hour + time.Duration(rng.Int63n(int64(7*time.Hour)))),
		})
	}
	return qs
}

// memRunQueries answers the probe set and returns mean µs/query plus the
// results for the identity gates. Any query error fails the measurement.
func memRunQueries(sys *locater.System, qs []locater.Query) (float64, []locater.Result, error) {
	start := time.Now()
	batch := sys.LocateBatch(qs, runtime.GOMAXPROCS(0))
	elapsed := time.Since(start)
	out := make([]locater.Result, len(batch))
	for i, r := range batch {
		if r.Err != nil {
			return 0, nil, fmt.Errorf("query (%s, %v): %w", r.Query.Device, r.Query.Time, r.Err)
		}
		out[i] = r.Result
	}
	return float64(elapsed.Microseconds()) / float64(len(qs)), out, nil
}

// memArm is one latency arm's measurement: cold/warm µs per query, the
// answers (for the identity gates), and the cold pass's segmented
// point-lookup decode traffic (for the decode-reduction gate).
type memArm struct {
	coldUs, warmUs float64
	res            []locater.Result
	lookups        int64
	lookupBytes    int64
}

// memMeasureLatency builds one occupancy-enabled arm and runs the probe
// protocol. Cold is the honest end-to-end first-query cost: models
// untrained and the decoded-block cache invalidated, so the pass pays
// gap extraction over full histories, model training, AND (on the
// segmented arm) every page-in — the exact path a query takes after
// recovery or under memory pressure. Warm passes (best-of-2) follow on the
// now-trained, now-cached system.
func memMeasureLatency(b *space.Building, n int, segmented bool, blockEvents int, qs []locater.Query) (memArm, error) {
	var arm memArm
	sys, err := locater.New(memConfig(b, segmented, blockEvents, true, memCacheEntries(blockEvents)))
	if err != nil {
		return arm, err
	}
	if _, err := memIngest(sys, 0, n); err != nil {
		return arm, err
	}
	sys.InvalidateSegmentCache() // drop the seal-time pre-warm: cold means cold
	if arm.coldUs, arm.res, err = memRunQueries(sys, qs); err != nil {
		return arm, err
	}
	// Capture decode traffic after the cold pass only: warm passes serve
	// from cache and would dilute bytes-per-lookup toward zero on both arms.
	seg := sys.CacheStats().Segments
	arm.lookups, arm.lookupBytes = seg.PointLookups, seg.LookupDecodedBytes
	for i := 0; i < 2; i++ {
		us, _, err := memRunQueries(sys, qs)
		if err != nil {
			return arm, err
		}
		if i == 0 || us < arm.warmUs {
			arm.warmUs = us
		}
	}
	return arm, nil
}

func memResultsIdentical(a, b []locater.Result) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// memRecoveryCheck runs the crash-recovery equivalence gate on a durable
// segmented system: checkpoint mid-stream (publishing the only manifest),
// keep ingesting past more seal boundaries, capture the live answers, then
// reopen the directory without Close — recovery from manifest + cold tier +
// WAL tail — and require identical answers with a cold segment cache.
func memRecoveryCheck(b *space.Building, n int, qs []locater.Query) (bool, error) {
	dir, err := os.MkdirTemp("", "locater-membench-*")
	if err != nil {
		return false, err
	}
	defer os.RemoveAll(dir)
	// The durable arm runs the full cold tier as deployed: block encoding
	// AND the mmap backend, so recovery equivalence covers mapped reads,
	// lazy block-index parses, and checkpoint-time reclamation together.
	cfg := memConfig(b, true, memBlockEvents, true, memCacheEntries(memBlockEvents))
	cfg.ColdTierMmap = true
	live, err := locater.Open(dir, cfg, locater.PersistOptions{})
	if err != nil {
		return false, err
	}
	cut := n * 4 / 5
	if _, err := memIngest(live, 0, cut); err != nil {
		return false, err
	}
	if err := live.Checkpoint(); err != nil {
		return false, err
	}
	// The tail: the remaining devices land after the only manifest, so
	// recovery must stitch manifest + cold tier + WAL tail back together.
	if _, err := memIngest(live, cut, n); err != nil {
		return false, err
	}
	_, liveRes, err := memRunQueries(live, qs)
	if err != nil {
		return false, err
	}
	// Crash: reopen without Close. The recovered system pages everything
	// back in from the cold tier.
	rec, err := locater.Open(dir, cfg, locater.PersistOptions{})
	if err != nil {
		return false, err
	}
	defer rec.Close()
	if rec.NumEvents() != live.NumEvents() {
		return false, fmt.Errorf("recovered %d events, live had %d", rec.NumEvents(), live.NumEvents())
	}
	rec.InvalidateSegmentCache()
	_, recRes, err := memRunQueries(rec, qs)
	if err != nil {
		return false, err
	}
	return memResultsIdentical(liveRes, recRes), nil
}

// parseDeviceLadder parses the -memory-devices flag ("1000,10000,50000").
func parseDeviceLadder(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		n, err := strconv.Atoi(part)
		if err != nil || n < 1 {
			return nil, fmt.Errorf("bad device count %q", part)
		}
		out = append(out, n)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("empty device ladder")
	}
	return out, nil
}

// runMemory is the -memory mode: the resident-bytes + cold/warm-latency
// ladder comparing the segmented store against the plain-slice layout, with
// byte-identity and crash-recovery gates. The headline gates — ≥4× memory
// reduction and ≤1.1× cold-query ratio at the largest rung — are enforced
// here, so a regression fails the command, not just the CI jq step.
func runMemory(ladder []int, outDir string) error {
	b, err := memBuilding()
	if err != nil {
		return err
	}
	rep := memoryReport{
		Name:               "memory",
		EventsPerDevice:    memEventsPerDev,
		SegmentMaxEvents:   memSegMaxEvents,
		SegmentBlockEvents: memBlockEvents,
	}
	fmt.Printf("%-9s %9s %12s %12s %10s %11s %11s %10s %9s %9s %10s\n",
		"devices", "events", "B/ev slices", "B/ev segs", "reduction", "cold-sl µs", "cold-bk µs", "cold-wh µs", "bk-ratio", "dec-red", "identical")
	for _, n := range ladder {
		phase := time.Now()
		bpeSlices, err := memMeasureBytes(b, n, false)
		if err != nil {
			return fmt.Errorf("devices=%d slices memory: %w", n, err)
		}
		bpeSegments, err := memMeasureBytes(b, n, true)
		if err != nil {
			return fmt.Errorf("devices=%d segments memory: %w", n, err)
		}
		fmt.Printf("# devices=%d memory arms done in %.0fs\n", n, time.Since(phase).Seconds())
		qs := memQuerySet(n)
		phase = time.Now()
		slices, err := memMeasureLatency(b, n, false, memBlockEvents, qs)
		if err != nil {
			return fmt.Errorf("devices=%d slices latency: %w", n, err)
		}
		fmt.Printf("# devices=%d slices latency arm (%d queries) done in %.0fs\n", n, len(qs), time.Since(phase).Seconds())
		// Whole before block: arms share a process, and whichever runs
		// later inherits a grown heap (GC pacing) worth 10–25% of the cold
		// pass at the largest rung. Paired in-process runs with alternating
		// order (cmd/locater-bench/coldprof_test.go) measure the two
		// layouts at parity; running the baseline first keeps the ratio's
		// bias on the conservative side for the slices comparison while
		// not systematically penalizing the layout under test.
		phase = time.Now()
		whole, err := memMeasureLatency(b, n, true, -1, qs)
		if err != nil {
			return fmt.Errorf("devices=%d whole-segment latency: %w", n, err)
		}
		fmt.Printf("# devices=%d whole-segment latency arm done in %.0fs\n", n, time.Since(phase).Seconds())
		phase = time.Now()
		block, err := memMeasureLatency(b, n, true, memBlockEvents, qs)
		if err != nil {
			return fmt.Errorf("devices=%d block latency: %w", n, err)
		}
		fmt.Printf("# devices=%d block latency arm done in %.0fs\n", n, time.Since(phase).Seconds())
		if block.lookups == 0 || whole.lookups == 0 {
			return fmt.Errorf("devices=%d: no segmented point lookups recorded (block=%d whole=%d); the decode gate would be vacuous", n, block.lookups, whole.lookups)
		}
		bplWhole := float64(whole.lookupBytes) / float64(whole.lookups)
		bplBlock := float64(block.lookupBytes) / float64(block.lookups)
		row := memoryRow{
			Devices:               n,
			Events:                n * memEventsPerDev,
			BytesPerEventSlices:   bpeSlices,
			BytesPerEventSegments: bpeSegments,
			Reduction:             bpeSlices / bpeSegments,
			ColdUsSlices:          slices.coldUs,
			ColdUsSegments:        block.coldUs,
			WarmUsSlices:          slices.warmUs,
			WarmUsSegments:        block.warmUs,
			ColdRatio:             block.coldUs / slices.coldUs,
			ColdUsWhole:           whole.coldUs,
			ColdBlockRatio:        block.coldUs / whole.coldUs,
			BytesPerLookupWhole:   bplWhole,
			BytesPerLookupBlock:   bplBlock,
			DecodeReduction:       bplWhole / bplBlock,
			Identical:             memResultsIdentical(slices.res, block.res) && memResultsIdentical(slices.res, whole.res),
		}
		rep.Rows = append(rep.Rows, row)
		fmt.Printf("%-9d %9d %12.1f %12.1f %9.2fx %11.0f %11.0f %10.0f %9.3f %8.2fx %10v\n",
			n, row.Events, row.BytesPerEventSlices, row.BytesPerEventSegments,
			row.Reduction, row.ColdUsSlices, row.ColdUsSegments, row.ColdUsWhole,
			row.ColdBlockRatio, row.DecodeReduction, row.Identical)
	}

	recN := ladder[0]
	rep.RecoveryIdentical, err = memRecoveryCheck(b, recN, memQuerySet(recN))
	if err != nil {
		return fmt.Errorf("recovery check: %w", err)
	}
	fmt.Printf("recovery-identical (%d devices, crash after checkpoint + tail): %v\n", recN, rep.RecoveryIdentical)

	if err := writeBenchJSON(outDir, "BENCH_memory.json", rep); err != nil {
		return err
	}

	// Gates. Identity and recovery always hold; the headline memory and
	// cold-latency bounds apply at the ladder's largest rung.
	for _, row := range rep.Rows {
		if !row.Identical {
			return fmt.Errorf("devices=%d: segmented Locate answers diverge from the slice arm", row.Devices)
		}
	}
	if !rep.RecoveryIdentical {
		return fmt.Errorf("crash recovery answers diverge from the live system")
	}
	last := rep.Rows[len(rep.Rows)-1]
	if last.Reduction < 4 {
		return fmt.Errorf("devices=%d: memory reduction %.2fx, want >= 4x", last.Devices, last.Reduction)
	}
	if last.ColdRatio > 1.1 {
		return fmt.Errorf("devices=%d: cold-query ratio %.3f, want <= 1.1", last.Devices, last.ColdRatio)
	}
	if last.DecodeReduction < 4 {
		return fmt.Errorf("devices=%d: bytes-decoded-per-lookup reduction %.2fx (whole %.0f B -> block %.0f B), want >= 4x",
			last.Devices, last.DecodeReduction, last.BytesPerLookupWhole, last.BytesPerLookupBlock)
	}
	// Paired in-process runs (coldprof_test.go, alternating arm order)
	// measure the block layout at parity with whole-segment decode —
	// ratios 1.00–1.08 at 50k once heap growth is equalized — so this
	// gate is parity plus a noise allowance.
	if last.ColdBlockRatio > 1.15 {
		return fmt.Errorf("devices=%d: block/whole cold-query ratio %.3f, want <= 1.15", last.Devices, last.ColdBlockRatio)
	}
	return nil
}
