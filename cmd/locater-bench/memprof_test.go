package main

// Opt-in profiling harness for the -memory bench: builds one rung's latency
// arm and runs a cold query pass under the test profiler, which is how the
// segmented read path gets tuned (it is what surfaced the window-assembly
// sort that mergeRuns replaced). Run with:
//
//	MEMPROF_DEVICES=50000 go test -run MemProf -cpuprofile cpu.out ./cmd/locater-bench
//
// Add MEMPROF_SLICES=1 for the flat-slice baseline arm. Guarded by an env
// var so the ordinary test run skips it.

import (
	"os"
	"strconv"
	"testing"

	"locater"
)

func TestMemProfSegmentedCold(t *testing.T) {
	nStr := os.Getenv("MEMPROF_DEVICES")
	if nStr == "" {
		t.Skip("set MEMPROF_DEVICES to run the profiling scaffold")
	}
	n, err := strconv.Atoi(nStr)
	if err != nil {
		t.Fatal(err)
	}
	segmented := os.Getenv("MEMPROF_SLICES") == ""
	// MEMPROF_WHOLE=1 profiles the whole-segment baseline arm instead of the
	// block-granular layout.
	blockEvents := memBlockEvents
	if os.Getenv("MEMPROF_WHOLE") != "" {
		blockEvents = -1
	}
	b, err := memBuilding()
	if err != nil {
		t.Fatal(err)
	}
	sys, err := locater.New(memConfig(b, segmented, blockEvents, true, memCacheEntries(blockEvents)))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := memIngest(sys, 0, n); err != nil {
		t.Fatal(err)
	}
	sys.InvalidateSegmentCache()
	qs := memQuerySet(n)
	if len(qs) > 8 {
		qs = qs[:8]
	}
	us, _, err := memRunQueries(sys, qs)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("segmented=%v devices=%d cold=%.0fus/query", segmented, n, us)
}
