package main

import (
	"fmt"
	"reflect"
	"time"

	"locater/internal/event"
	"locater/internal/space"
	"locater/internal/store"
)

// neighborsReport is the machine-readable result of -neighbors, emitted as
// BENCH_neighbors.json for the CI perf-tracking pipeline: neighbor-discovery
// (ActiveDevices / ActiveDevicesAt) latency served by the temporal
// occupancy index versus the full-scan baseline, at a fixed active set
// while the total device count scales.
type neighborsReport struct {
	Name string `json:"name"`
	// ActiveDevices is the fixed number of devices active in the query
	// window at every row.
	ActiveDevices int            `json:"active_devices"`
	BucketSeconds float64        `json:"bucket_seconds"`
	Rows          []neighborsRow `json:"rows"`
}

type neighborsRow struct {
	Devices int `json:"devices"`
	Events  int `json:"events"`
	// IndexedNs / ScanNs: ns per ActiveDevices lookup with the occupancy
	// index on and off; Speedup = ScanNs / IndexedNs.
	IndexedNs float64 `json:"indexed_ns"`
	ScanNs    float64 `json:"scan_ns"`
	Speedup   float64 `json:"speedup"`
	// ScopedIndexedNs / ScopedScanNs: the region-scoped ActiveDevicesAt
	// variant fine-grained neighbor discovery issues (4 of 16 APs).
	ScopedIndexedNs float64 `json:"scoped_indexed_ns"`
	ScopedScanNs    float64 `json:"scoped_scan_ns"`
	ScopedSpeedup   float64 `json:"scoped_speedup"`
	// IndexBuckets / IndexEntries report the index's resident size.
	IndexBuckets int `json:"index_buckets"`
	IndexEntries int `json:"index_entries"`
}

// seedNeighborStore builds a store with n devices: every device has a day
// of history a month before the query window, and a fixed set of `active`
// devices has one event inside it.
func seedNeighborStore(n, active int, indexed bool) (*store.Store, time.Time, time.Time, int, error) {
	base := time.Date(2026, 3, 2, 9, 0, 0, 0, time.UTC)
	winStart := base.Add(30 * 24 * time.Hour)
	s := store.New(0)
	if !indexed {
		s.ConfigureOccupancy(0, false)
	}
	evs := make([]event.Event, 0, n+active)
	for i := 0; i < n; i++ {
		evs = append(evs, event.Event{
			Device: event.DeviceID(fmt.Sprintf("d%06d", i)),
			AP:     space.APID(fmt.Sprintf("ap%02d", i%16)),
			Time:   base.Add(time.Duration(i%1440) * time.Minute),
		})
	}
	for i := 0; i < active; i++ {
		evs = append(evs, event.Event{
			Device: event.DeviceID(fmt.Sprintf("d%06d", i*(n/active))),
			AP:     space.APID(fmt.Sprintf("ap%02d", i%16)),
			Time:   winStart.Add(time.Duration(i%30) * time.Minute),
		})
	}
	if _, err := s.Ingest(evs); err != nil {
		return nil, time.Time{}, time.Time{}, 0, err
	}
	return s, winStart.Add(-5 * time.Minute), winStart.Add(35 * time.Minute), len(evs), nil
}

// measureNs times fn until it has consumed ~40ms (at least 10 iterations)
// and returns ns per call — minimum-of-3 rounds, the usual noise filter.
func measureNs(fn func()) float64 {
	best := 0.0
	for round := 0; round < 3; round++ {
		iters := 0
		start := time.Now()
		for time.Since(start) < 40*time.Millisecond || iters < 10 {
			fn()
			iters++
		}
		ns := float64(time.Since(start).Nanoseconds()) / float64(iters)
		if round == 0 || ns < best {
			best = ns
		}
	}
	return best
}

// runNeighbors measures neighbor discovery across store sizes with a fixed
// active fraction, verifies the index and scan paths agree, and writes
// BENCH_neighbors.json.
func runNeighbors(outDir string) error {
	const active = 64
	scopeAPs := []space.APID{"ap00", "ap01", "ap02", "ap03"}
	rep := neighborsReport{
		Name:          "neighbors",
		ActiveDevices: active,
		BucketSeconds: store.DefaultOccupancyBucket.Seconds(),
	}
	fmt.Printf("%-9s %12s %12s %9s %14s %14s %9s\n",
		"devices", "indexed", "scan", "speedup", "scoped-indexed", "scoped-scan", "speedup")
	for _, n := range []int{1000, 10000, 50000} {
		indexed, start, end, events, err := seedNeighborStore(n, active, true)
		if err != nil {
			return err
		}
		scan, _, _, _, err := seedNeighborStore(n, active, false)
		if err != nil {
			return err
		}
		// Correctness gate: a divergent result must fail the benchmark, not
		// be reported as a speedup.
		if got, want := indexed.ActiveDevices(start, end), scan.ActiveDevices(start, end); !reflect.DeepEqual(got, want) {
			return fmt.Errorf("devices=%d: index result diverges from scan (%d vs %d devices)", n, len(got), len(want))
		}
		if got, want := indexed.ActiveDevicesAt(scopeAPs, start, end), scan.ActiveDevicesAt(scopeAPs, start, end); !reflect.DeepEqual(got, want) {
			return fmt.Errorf("devices=%d: scoped index result diverges from scan", n)
		}

		row := neighborsRow{Devices: n, Events: events}
		row.IndexedNs = measureNs(func() { indexed.ActiveDevices(start, end) })
		row.ScanNs = measureNs(func() { scan.ActiveDevices(start, end) })
		row.ScopedIndexedNs = measureNs(func() { indexed.ActiveDevicesAt(scopeAPs, start, end) })
		row.ScopedScanNs = measureNs(func() { scan.ActiveDevicesAt(scopeAPs, start, end) })
		row.Speedup = row.ScanNs / row.IndexedNs
		row.ScopedSpeedup = row.ScopedScanNs / row.ScopedIndexedNs
		st := indexed.OccupancyStats()
		row.IndexBuckets, row.IndexEntries = st.Buckets, st.Entries
		rep.Rows = append(rep.Rows, row)
		fmt.Printf("%-9d %10.0fns %10.0fns %8.1fx %12.0fns %12.0fns %8.1fx\n",
			n, row.IndexedNs, row.ScanNs, row.Speedup,
			row.ScopedIndexedNs, row.ScopedScanNs, row.ScopedSpeedup)
	}
	return writeBenchJSON(outDir, "BENCH_neighbors.json", rep)
}
