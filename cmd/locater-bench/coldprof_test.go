package main

import (
	"os"
	"strconv"
	"strings"
	"testing"

	"locater"
)

// TestColdProf times fresh-system cold passes for the block and whole
// arms back to back — the same protocol the -memory bench uses, repeated
// within one process so the arm ratio is measurable (and profilable, via
// -cpuprofile) without the run-to-run noise of the full ladder. Guarded by
// an env var so a bare `go test ./...` skips it, like TestMemProfSegmentedCold:
//
//	COLDPROF_DEVICES=5000 go test -run ColdProf -cpuprofile cpu.out ./cmd/locater-bench
func TestColdProf(t *testing.T) {
	nStr := os.Getenv("COLDPROF_DEVICES")
	if nStr == "" {
		t.Skip("set COLDPROF_DEVICES to run the profiling scaffold")
	}
	n, _ := strconv.Atoi(nStr)
	b, err := memBuilding()
	if err != nil {
		t.Fatal(err)
	}
	qs := memQuerySet(n)
	arms := map[string]int{"block": memBlockEvents, "whole": -1}
	names := []string{"block", "whole"}
	if only := os.Getenv("COLDPROF_ARM"); only != "" {
		// One arm isolates a -cpuprofile; a comma list reorders the arms
		// (process heap growth favors whichever runs later).
		names = strings.Split(only, ",")
	}
	reps := 3
	if r, _ := strconv.Atoi(os.Getenv("COLDPROF_REPS")); r > 0 {
		reps = r
	}
	for rep := 0; rep < reps; rep++ {
		for _, name := range names {
			be := arms[name]
			sys, err := locater.New(memConfig(b, true, be, true, memCacheEntries(be)))
			if err != nil {
				t.Fatal(err)
			}
			if _, err := memIngest(sys, 0, n); err != nil {
				t.Fatal(err)
			}
			sys.InvalidateSegmentCache()
			us, _, err := memRunQueries(sys, qs)
			if err != nil {
				t.Fatal(err)
			}
			seg := sys.CacheStats().Segments
			t.Logf("rep %d %s: cold=%.0fus/query lookups=%d bytes/lookup=%.1f decoded=%d",
				rep, name, us, seg.PointLookups, float64(seg.LookupDecodedBytes)/float64(seg.PointLookups), seg.DecodedBytes)
		}
	}
}
