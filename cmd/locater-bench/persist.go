package main

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"sync"
	"time"

	"locater/internal/event"
	"locater/internal/space"
	"locater/internal/store"
	"locater/internal/wal"
)

// persistReport is the machine-readable result of -persist, emitted as
// BENCH_persist.json for the CI perf-tracking pipeline.
type persistReport struct {
	Name       string `json:"name"`
	Events     int    `json:"events"`
	Devices    int    `json:"devices"`
	BatchSize  int    `json:"batch_size"`
	Writers    int    `json:"writers"`
	Fsync      bool   `json:"fsync"`
	GoMaxProcs int    `json:"go_max_procs"`

	// Group-commit ingest: concurrent writers, WAL-before-ack, one fsync
	// shared per commit round.
	IngestSeconds      float64 `json:"ingest_seconds"`
	IngestEventsPerSec float64 `json:"ingest_events_per_sec"`

	// Recovery replay: wal.Open (decode + CRC) plus rebuilding the store.
	RecoverySeconds      float64 `json:"recovery_seconds"`
	RecoveryEventsPerSec float64 `json:"recovery_events_per_sec"`

	// Snapshot-based recovery after a checkpoint compacted the log.
	SnapshotRecoverySeconds      float64 `json:"snapshot_recovery_seconds"`
	SnapshotRecoveryEventsPerSec float64 `json:"snapshot_recovery_events_per_sec"`

	WALBytes int64 `json:"wal_bytes"`

	// Log-position stats captured after the ingest phase (the same
	// figures System.PersistStats and /stats report on a live server):
	// segment count, last appended LSN, and highest LSN known durable.
	Segments   int    `json:"segments"`
	LastLSN    uint64 `json:"last_lsn"`
	DurableLSN uint64 `json:"durable_lsn"`
}

// runPersist measures the durable event store: group-commit ingest
// throughput (events/sec acknowledged durable) and recovery replay
// throughput (events/sec from WAL, then from snapshot+tail), and writes
// BENCH_persist.json.
func runPersist(dir string, events, writers int, fsync bool, outDir string) error {
	tmp := dir
	if tmp == "" {
		var err error
		tmp, err = os.MkdirTemp("", "locater-persist-bench")
		if err != nil {
			return err
		}
		defer os.RemoveAll(tmp)
	}
	if writers < 1 {
		writers = runtime.GOMAXPROCS(0)
	}
	const batchSize = 512
	const numDevices = 512

	batches := makeBatches(events, batchSize, numDevices)
	total := 0
	for _, b := range batches {
		total += len(b)
	}

	// Phase 1: concurrent group-commit ingest through the store, exactly
	// the production write path (validate → assign IDs → WAL append →
	// apply → shared fsync).
	st := store.New(0)
	w, _, err := wal.Open(tmp, wal.Options{Fsync: fsync})
	if err != nil {
		return err
	}
	st.AttachBackend(w)

	var wg sync.WaitGroup
	errCh := make(chan error, writers)
	next := make(chan []event.Event, len(batches))
	for _, b := range batches {
		next <- b
	}
	close(next)
	start := time.Now()
	for g := 0; g < writers; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for b := range next {
				if _, err := st.Ingest(b); err != nil {
					errCh <- err
					return
				}
			}
		}()
	}
	wg.Wait()
	ingestSecs := time.Since(start).Seconds()
	close(errCh)
	for err := range errCh {
		return fmt.Errorf("ingest: %w", err)
	}
	segments, lastLSN, durableLSN := w.Stats()
	if err := w.Close(); err != nil {
		return err
	}
	walBytes, err := dirBytes(tmp)
	if err != nil {
		return err
	}

	// Phase 2: recovery replay from the raw log (no snapshot yet).
	recoverySecs, recovered, err := timeRecovery(tmp)
	if err != nil {
		return fmt.Errorf("wal recovery: %w", err)
	}
	if recovered != total {
		return fmt.Errorf("wal recovery lost events: got %d, want %d", recovered, total)
	}

	// Phase 3: checkpoint, then recovery from snapshot + (empty) tail.
	w2, rec2, err := wal.Open(tmp, wal.Options{})
	if err != nil {
		return err
	}
	st2 := store.New(0)
	if _, err := st2.Ingest(rec2.Events); err != nil {
		w2.Close()
		return err
	}
	st2.AdvanceNextID(rec2.NextID)
	state := st2.SnapshotState()
	if err := w2.WriteSnapshot(rec2.LastLSN, &wal.SnapshotData{
		NextID: state.NextID,
		Deltas: state.Deltas,
		Events: state.Events,
		Labels: map[event.DeviceID]map[space.RoomID]int{},
	}); err != nil {
		w2.Close()
		return err
	}
	if err := w2.Close(); err != nil {
		return err
	}
	snapSecs, snapRecovered, err := timeRecovery(tmp)
	if err != nil {
		return fmt.Errorf("snapshot recovery: %w", err)
	}
	if snapRecovered != total {
		return fmt.Errorf("snapshot recovery lost events: got %d, want %d", snapRecovered, total)
	}

	rep := persistReport{
		Name:                         "persist",
		Events:                       total,
		Devices:                      numDevices,
		BatchSize:                    batchSize,
		Writers:                      writers,
		Fsync:                        fsync,
		GoMaxProcs:                   runtime.GOMAXPROCS(0),
		IngestSeconds:                ingestSecs,
		IngestEventsPerSec:           float64(total) / ingestSecs,
		RecoverySeconds:              recoverySecs,
		RecoveryEventsPerSec:         float64(total) / recoverySecs,
		SnapshotRecoverySeconds:      snapSecs,
		SnapshotRecoveryEventsPerSec: float64(total) / snapSecs,
		WALBytes:                     walBytes,
		Segments:                     segments,
		LastLSN:                      lastLSN,
		DurableLSN:                   durableLSN,
	}

	fmt.Printf("persist: %d events, %d writers, batch %d, fsync=%v\n", total, writers, batchSize, fsync)
	fmt.Printf("%-22s %12.0f events/sec (%.2fs)\n", "group-commit ingest", rep.IngestEventsPerSec, ingestSecs)
	fmt.Printf("%-22s %12.0f events/sec (%.2fs)\n", "wal recovery", rep.RecoveryEventsPerSec, recoverySecs)
	fmt.Printf("%-22s %12.0f events/sec (%.2fs)\n", "snapshot recovery", rep.SnapshotRecoveryEventsPerSec, snapSecs)
	fmt.Printf("%-22s %12d bytes\n", "wal size", walBytes)

	return writeBenchJSON(outDir, "BENCH_persist.json", rep)
}

// makeBatches builds a synthetic in-time-order workload: numDevices devices
// probing round-robin every few seconds, chunked into ingest batches.
func makeBatches(events, batchSize, numDevices int) [][]event.Event {
	t0 := time.Date(2026, 1, 5, 0, 0, 0, 0, time.UTC)
	devs := make([]event.DeviceID, numDevices)
	aps := make([]space.APID, numDevices)
	for i := range devs {
		devs[i] = event.DeviceID(fmt.Sprintf("d%02x:%02x:%02x", (i>>16)&0xff, (i>>8)&0xff, i&0xff))
		aps[i] = space.APID(fmt.Sprintf("ap-%d", i%64))
	}
	var batches [][]event.Event
	for i := 0; i < events; i += batchSize {
		n := batchSize
		if i+n > events {
			n = events - i
		}
		b := make([]event.Event, n)
		for j := 0; j < n; j++ {
			k := i + j
			b[j] = event.Event{
				Device: devs[k%numDevices],
				Time:   t0.Add(time.Duration(k) * 3 * time.Second / time.Duration(numDevices)),
				AP:     aps[k%numDevices],
			}
		}
		batches = append(batches, b)
	}
	return batches
}

// timeRecovery rebuilds a store from the directory and reports elapsed
// seconds plus the number of events recovered.
func timeRecovery(dir string) (float64, int, error) {
	start := time.Now()
	w, rec, err := wal.Open(dir, wal.Options{})
	if err != nil {
		return 0, 0, err
	}
	st := store.New(0)
	if len(rec.Events) > 0 {
		if _, err := st.Ingest(rec.Events); err != nil {
			w.Close()
			return 0, 0, err
		}
	}
	st.AdvanceNextID(rec.NextID)
	elapsed := time.Since(start).Seconds()
	if err := w.Close(); err != nil {
		return 0, 0, err
	}
	return elapsed, st.NumEvents(), nil
}

func dirBytes(dir string) (int64, error) {
	var total int64
	entries, err := os.ReadDir(dir)
	if err != nil {
		return 0, err
	}
	for _, e := range entries {
		info, err := e.Info()
		if err != nil {
			return 0, err
		}
		total += info.Size()
	}
	return total, nil
}

// writeBenchJSON emits a machine-readable benchmark report for the CI
// artifact pipeline.
func writeBenchJSON(outDir, name string, v any) error {
	if outDir == "" {
		outDir = "."
	}
	if err := os.MkdirAll(outDir, 0o755); err != nil {
		return err
	}
	data, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return err
	}
	path := filepath.Join(outDir, name)
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", path)
	return nil
}
