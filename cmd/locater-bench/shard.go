package main

import (
	"fmt"
	"math/rand"
	"runtime"
	"time"

	"locater"
	"locater/internal/cluster"
	"locater/internal/experiments"
	"locater/internal/sim"
)

// shardReport is the machine-readable result of -shard, emitted as
// BENCH_shard.json for the CI perf-tracking pipeline.
type shardReport struct {
	Name    string     `json:"name"`
	Events  int        `json:"events"`
	Devices int        `json:"devices"`
	Queries int        `json:"queries"`
	Workers int        `json:"workers"`
	Rows    []shardRow `json:"rows"`
}

type shardRow struct {
	Shards             int     `json:"shards"`
	IngestEventsPerSec float64 `json:"ingest_events_per_sec"`
	// IngestSpeedup is the ingest rate relative to the 1-shard cluster —
	// the multi-core payoff of per-shard store locks (≈1.0 on a 1-core
	// runner, where the parallel shards time-slice one CPU).
	IngestSpeedup float64 `json:"ingest_speedup"`
	QueryQPS      float64 `json:"query_qps"`
	QuerySpeedup  float64 `json:"query_speedup"`
	// IdenticalToSystem reports whether every query answered by this
	// cluster matched a bare System byte-for-byte. Required true for
	// shards=1 (the correctness gate); informational for more shards,
	// where device-hash routing makes neighbor evidence shard-local.
	IdenticalToSystem bool `json:"identical_to_system"`
	// Agreement is the fraction of queries whose answers matched the bare
	// System (1.0 when IdenticalToSystem).
	Agreement float64 `json:"agreement"`
}

// shardChunk is the ingest batch size of the ladder: large enough to
// amortize per-call overhead, small enough that the router's partition pass
// interleaves with shard-parallel ingest.
const shardChunk = 4096

// runShard measures the sharded cluster against a bare System: an ingest
// ladder (events/sec at 1, 2, 4 shards — per-shard store locks are the
// multi-core unlock) and a query ladder over the same sampled workload,
// with a correctness gate: a 1-shard cluster must answer every query
// byte-identically to the bare System, or the run fails. Multi-shard
// agreement is reported but not gated — device-hash sharding keeps each
// device's neighbor evidence shard-local, a documented approximation.
func runShard(p experiments.Params, workers int, benchOut string) error {
	if workers < 1 {
		workers = runtime.GOMAXPROCS(0)
	}
	ds, err := experiments.BuildDBH(p)
	if err != nil {
		return err
	}
	queries := sampleShardQueries(ds, p.Queries, p.Seed)
	cfg := locater.Config{
		Building:           ds.Building,
		Variant:            locater.DependentVariant,
		EnableCache:        true,
		HistoryDays:        14,
		PromotionsPerRound: 8,
	}

	// The reference answers: a bare System over the same events and
	// queries.
	base, err := locater.New(cfg)
	if err != nil {
		return err
	}
	if err := ingestChunks(base, ds.Events); err != nil {
		return err
	}
	if err := base.EstimateDeltas(0.9, 2*time.Minute, 15*time.Minute); err != nil {
		return err
	}
	// The reference (and every correctness batch below) is serialized:
	// concurrent workers interleave the fine stage's incremental
	// affinity-graph updates nondeterministically, and the byte-identity
	// contract is defined over the deterministic serial execution.
	want := base.LocateBatch(queries, 1)

	fmt.Printf("workload: %d events, %d devices, %d queries, %d workers\n",
		base.NumEvents(), base.NumDevices(), len(queries), workers)
	fmt.Printf("%-8s %14s %9s %12s %9s %10s %10s\n",
		"shards", "ingest ev/s", "speedup", "queries/sec", "speedup", "identical", "agreement")

	rep := shardReport{
		Name:    "shard",
		Events:  base.NumEvents(),
		Devices: base.NumDevices(),
		Queries: len(queries),
		Workers: workers,
	}
	var baseIngest, baseQPS float64
	for _, n := range []int{1, 2, 4} {
		c, err := cluster.New(cfg, cluster.Options{Shards: n})
		if err != nil {
			return err
		}
		start := time.Now()
		if err := ingestChunks(c, ds.Events); err != nil {
			return err
		}
		ingestRate := float64(len(ds.Events)) / time.Since(start).Seconds()
		if err := c.EstimateDeltas(0.9, 2*time.Minute, 15*time.Minute); err != nil {
			return err
		}
		// Correctness first (cold, serial, deterministic), then throughput
		// over the warmed cluster with the full worker budget — matching
		// -throughput, which also measures the warmed steady state.
		got := c.LocateBatch(queries, 1)
		start = time.Now()
		c.LocateBatch(queries, workers)
		qps := float64(len(queries)) / time.Since(start).Seconds()

		match := 0
		for i := range got {
			if sameAnswer(got[i], want[i]) {
				match++
			}
		}
		agreement := float64(match) / float64(len(queries))
		if n == 1 {
			baseIngest, baseQPS = ingestRate, qps
		}
		row := shardRow{
			Shards:             n,
			IngestEventsPerSec: ingestRate,
			IngestSpeedup:      ingestRate / baseIngest,
			QueryQPS:           qps,
			QuerySpeedup:       qps / baseQPS,
			IdenticalToSystem:  match == len(queries),
			Agreement:          agreement,
		}
		rep.Rows = append(rep.Rows, row)
		fmt.Printf("%-8d %14.0f %8.2fx %12.0f %8.2fx %10t %9.1f%%\n",
			n, ingestRate, row.IngestSpeedup, qps, row.QuerySpeedup,
			row.IdenticalToSystem, 100*agreement)
		if n == 1 && !row.IdenticalToSystem {
			return fmt.Errorf("correctness gate: 1-shard cluster answered %d/%d queries differently from a bare System",
				len(queries)-match, len(queries))
		}
	}
	return writeBenchJSON(benchOut, "BENCH_shard.json", rep)
}

// ingestChunks feeds events in fixed-size batches, the shape a live
// deployment's ingest stream has (and the shape that lets the router fan
// each batch across shards).
func ingestChunks(sys locater.Locater, events []locater.Event) error {
	for off := 0; off < len(events); off += shardChunk {
		end := off + shardChunk
		if end > len(events) {
			end = len(events)
		}
		if err := sys.Ingest(events[off:end]); err != nil {
			return err
		}
	}
	return nil
}

// sampleShardQueries draws a deterministic query workload over the
// dataset's last week: device uniform over the population, time uniform in
// the window.
func sampleShardQueries(ds *sim.Dataset, n int, seed int64) []locater.Query {
	from, to := experiments.QueryWindow(ds)
	rng := rand.New(rand.NewSource(seed))
	window := to.Sub(from)
	queries := make([]locater.Query, n)
	for i := range queries {
		p := ds.People[rng.Intn(len(ds.People))]
		queries[i] = locater.Query{
			Device: p.Device,
			Time:   from.Add(time.Duration(rng.Int63n(int64(window)))),
		}
	}
	return queries
}

// sameAnswer reports whether two batch slots carry the same answer: equal
// Results and equivalent errors (both nil, or the same message).
func sameAnswer(a, b locater.BatchResult) bool {
	if (a.Err == nil) != (b.Err == nil) {
		return false
	}
	if a.Err != nil {
		return a.Err.Error() == b.Err.Error()
	}
	return a.Result == b.Result
}
