// Command locater-query answers semantic localization queries, either by
// loading a CSV connectivity dataset and JSON building metadata locally (as
// produced by locater-gen or exported from a real deployment), or — with
// -target — by asking a running locater-serve over its /v1 HTTP API.
//
// Usage:
//
//	locater-query -events data/dbh-events.csv -building data/dbh-building.json \
//	    -device d00:00:01 -time "2026-01-12 11:30:00"
//
//	# sweep a whole day at 30-minute steps:
//	locater-query -events ... -building ... -device d00:00:01 \
//	    -day 2026-01-12 -step 30m
//
//	# ask a running server instead of loading data locally:
//	locater-query -target http://localhost:8080 -device d00:00:01 \
//	    -time "2026-01-12 11:30:00"
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"locater"
	"locater/internal/client"
	"locater/internal/event"
	"locater/internal/space"
)

func main() {
	var (
		eventsPath   = flag.String("events", "", "connectivity CSV (required)")
		buildingPath = flag.String("building", "", "building metadata JSON (required)")
		device       = flag.String("device", "", "device MAC to locate (required)")
		timeStr      = flag.String("time", "", "query time, '2006-01-02 15:04:05'")
		dayStr       = flag.String("day", "", "sweep a whole day (YYYY-MM-DD) instead of one -time")
		stepStr      = flag.Duration("step", 30*time.Minute, "sweep step for -day")
		variant      = flag.String("variant", "dependent", "independent | dependent")
		cache        = flag.Bool("cache", true, "enable the caching engine")
		target       = flag.String("target", "", "base URL of a running locater-serve (e.g. http://localhost:8080); queries go over the /v1 API instead of loading data locally")
	)
	flag.Parse()

	if *device == "" || (*target == "" && (*eventsPath == "" || *buildingPath == "")) {
		flag.Usage()
		os.Exit(2)
	}
	if *timeStr == "" && *dayStr == "" {
		fatalf("one of -time or -day is required")
	}

	if *target != "" {
		c := client.New(*target)
		st, err := c.Stats()
		if err != nil {
			fatalf("reaching %s: %v", *target, err)
		}
		fmt.Printf("connected to %s: %d events for %d devices (%s)\n",
			*target, st.Events, st.Devices, st.Building)
		run(c, *device, *timeStr, *dayStr, *stepStr)
		return
	}

	bf, err := os.Open(*buildingPath)
	if err != nil {
		fatalf("opening building metadata: %v", err)
	}
	building, err := space.ReadJSON(bf)
	bf.Close()
	if err != nil {
		fatalf("parsing building metadata: %v", err)
	}

	ef, err := os.Open(*eventsPath)
	if err != nil {
		fatalf("opening events: %v", err)
	}
	events, err := event.ReadCSV(ef)
	ef.Close()
	if err != nil {
		fatalf("parsing events: %v", err)
	}

	v := locater.DependentVariant
	if *variant == "independent" {
		v = locater.IndependentVariant
	} else if *variant != "dependent" {
		fatalf("unknown variant %q", *variant)
	}

	sys, err := locater.New(locater.Config{
		Building:           building,
		Variant:            v,
		EnableCache:        *cache,
		PromotionsPerRound: 8,
	})
	if err != nil {
		fatalf("assembling LOCATER: %v", err)
	}
	if err := sys.Ingest(events); err != nil {
		fatalf("ingesting: %v", err)
	}
	sys.EstimateDeltas(0.9, 2*time.Minute, 15*time.Minute)
	fmt.Printf("loaded %d events for %d devices (%s)\n",
		sys.NumEvents(), sys.NumDevices(), building.Name())
	run(sys, *device, *timeStr, *dayStr, *stepStr)
}

// run answers the requested query or day sweep against any Locater — a
// locally assembled system or a remote /v1 client.
func run(sys locater.Locater, device, timeStr, dayStr string, step time.Duration) {
	if timeStr != "" {
		tq, err := time.Parse(event.TimeLayout, timeStr)
		if err != nil {
			fatalf("bad -time: %v", err)
		}
		answer(sys, locater.DeviceID(device), tq)
		return
	}

	day, err := time.Parse("2006-01-02", dayStr)
	if err != nil {
		fatalf("bad -day: %v", err)
	}
	for tq := day.Add(7 * time.Hour); tq.Before(day.Add(21 * time.Hour)); tq = tq.Add(step) {
		answer(sys, locater.DeviceID(device), tq)
	}
}

func answer(sys locater.Locater, d locater.DeviceID, tq time.Time) {
	res, err := sys.Locate(d, tq)
	if err != nil {
		fatalf("query failed: %v", err)
	}
	kind := "observed"
	if res.Repaired {
		kind = "repaired"
	}
	if res.Outside {
		fmt.Printf("%s  %s → outside the building (%s)\n", tq.Format(event.TimeLayout), d, kind)
		return
	}
	fmt.Printf("%s  %s → region %s, room %s (p=%.2f, %s, %d/%d neighbors)\n",
		tq.Format(event.TimeLayout), d, res.Region, res.Room,
		res.RoomProbability, kind, res.ProcessedNeighbors, res.TotalNeighbors)
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, format+"\n", args...)
	os.Exit(1)
}
