// Command locater-serve exposes a LOCATER system as an HTTP JSON service:
// the deployment mode of the paper's prototype, where applications (HVAC
// control, occupancy dashboards) query the cleaning engine online while
// connectivity events stream in.
//
// Endpoints:
//
//	GET  /locate?device=MAC&time=2006-01-02T15:04:05Z   → localization result
//	POST /locate/batch  body: {"queries":[{device,time}...], "workers":N}
//	                                                    → batch results, in order
//	POST /ingest   body: JSON array of {device, time, ap}  → ingest events
//	GET  /stats                                         → system counters
//	GET  /healthz                                       → liveness
//
// Usage:
//
//	locater-serve -events data/dbh-events.csv -building data/dbh-building.json -addr :8080
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"time"

	"locater"
	"locater/internal/event"
	"locater/internal/space"
	"locater/internal/srv"
)

func main() {
	var (
		eventsPath   = flag.String("events", "", "connectivity CSV to preload (optional)")
		buildingPath = flag.String("building", "", "building metadata JSON (required)")
		addr         = flag.String("addr", ":8080", "listen address")
		variant      = flag.String("variant", "dependent", "independent | dependent")
	)
	flag.Parse()

	if *buildingPath == "" {
		flag.Usage()
		os.Exit(2)
	}
	bf, err := os.Open(*buildingPath)
	if err != nil {
		log.Fatalf("opening building metadata: %v", err)
	}
	building, err := space.ReadJSON(bf)
	bf.Close()
	if err != nil {
		log.Fatalf("parsing building metadata: %v", err)
	}

	v := locater.DependentVariant
	if *variant == "independent" {
		v = locater.IndependentVariant
	}
	sys, err := locater.New(locater.Config{
		Building:           building,
		Variant:            v,
		EnableCache:        true,
		PromotionsPerRound: 8,
	})
	if err != nil {
		log.Fatalf("assembling LOCATER: %v", err)
	}

	if *eventsPath != "" {
		ef, err := os.Open(*eventsPath)
		if err != nil {
			log.Fatalf("opening events: %v", err)
		}
		events, err := event.ReadCSV(ef)
		ef.Close()
		if err != nil {
			log.Fatalf("parsing events: %v", err)
		}
		if err := sys.Ingest(events); err != nil {
			log.Fatalf("ingesting: %v", err)
		}
		sys.EstimateDeltas(0.9, 2*time.Minute, 15*time.Minute)
		fmt.Printf("preloaded %d events for %d devices\n", sys.NumEvents(), sys.NumDevices())
	}

	handler := srv.New(sys)
	fmt.Printf("LOCATER serving %s on %s\n", building.Name(), *addr)
	if err := http.ListenAndServe(*addr, handler); err != nil {
		log.Fatal(err)
	}
}
