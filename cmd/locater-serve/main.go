// Command locater-serve exposes a LOCATER system as an HTTP JSON service:
// the deployment mode of the paper's prototype, where applications (HVAC
// control, occupancy dashboards) query the cleaning engine online while
// connectivity events stream in.
//
// Endpoints:
//
//	GET  /locate?device=MAC&time=2006-01-02T15:04:05Z   → localization result
//	POST /locate/batch  body: {"queries":[{device,time}...], "workers":N}
//	                                                    → batch results, in order
//	POST /ingest   body: JSON array of {device, time, ap}  → ingest events
//	GET  /stats                                         → system counters
//	GET  /healthz                                       → liveness
//	GET  /debug/pprof/                                  → Go profiler (-pprof only)
//
// With -data-dir the system is durable: every acknowledged ingest is written
// ahead to a segmented log under the directory before the HTTP response, a
// background checkpoint compacts the log on -snapshot-interval, and a
// restart — graceful or a kill — recovers the acknowledged state before
// listening. -fsync chooses between machine-crash durability (default) and
// OS-buffered logging.
//
// Usage:
//
//	locater-serve -events data/dbh-events.csv -building data/dbh-building.json -addr :8080
//	locater-serve -building data/dbh-building.json -data-dir /var/lib/locater -fsync -snapshot-interval 5m
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"locater"
	"locater/internal/event"
	"locater/internal/space"
	"locater/internal/srv"
)

func main() {
	var (
		eventsPath   = flag.String("events", "", "connectivity CSV to preload (optional; skipped when -data-dir already holds events)")
		buildingPath = flag.String("building", "", "building metadata JSON (required)")
		addr         = flag.String("addr", ":8080", "listen address")
		variant      = flag.String("variant", "dependent", "independent | dependent")
		dataDir      = flag.String("data-dir", "", "directory for the durable event store (WAL + snapshots); empty = in-memory only")
		fsync        = flag.Bool("fsync", true, "with -data-dir: fsync acknowledged writes (group commit); off = flush to OS only")
		snapInterval = flag.Duration("snapshot-interval", 5*time.Minute, "with -data-dir: background checkpoint period (0 = only at shutdown)")
		pprofFlag    = flag.Bool("pprof", false, "expose Go's runtime profiler under /debug/pprof/ (off by default; profiling data reveals internals)")

		admission       = flag.Bool("admission", true, "admission control: bounded per-endpoint queues, deadline-aware 429s, batch shedding")
		maxConcurrent   = flag.Int("max-concurrent", 0, "executing /locate slots (default 2×GOMAXPROCS)")
		maxQueue        = flag.Int("max-queue", 0, "waiting /locate slots before 429 (default 8×GOMAXPROCS)")
		defaultDeadline = flag.Duration("default-deadline", 0, "deadline applied to requests without deadline_ms (default 5s)")
		maxDeadline     = flag.Duration("max-deadline", 0, "clamp on client-requested deadlines (default 30s)")
		shedBatchAt     = flag.Float64("shed-batch-at", 0, "queue occupancy above which /locate/batch is shed (default 0.5)")
	)
	flag.Parse()

	if *buildingPath == "" {
		flag.Usage()
		os.Exit(2)
	}
	bf, err := os.Open(*buildingPath)
	if err != nil {
		log.Fatalf("opening building metadata: %v", err)
	}
	building, err := space.ReadJSON(bf)
	bf.Close()
	if err != nil {
		log.Fatalf("parsing building metadata: %v", err)
	}

	v := locater.DependentVariant
	if *variant == "independent" {
		v = locater.IndependentVariant
	}
	cfg := locater.Config{
		Building:           building,
		Variant:            v,
		EnableCache:        true,
		PromotionsPerRound: 8,
	}

	var sys *locater.System
	if *dataDir != "" {
		sys, err = locater.Open(*dataDir, cfg, locater.PersistOptions{
			Fsync:            *fsync,
			SnapshotInterval: *snapInterval,
		})
		if err != nil {
			log.Fatalf("opening durable LOCATER: %v", err)
		}
		if n := sys.NumEvents(); n > 0 {
			fmt.Printf("recovered %d events for %d devices from %s\n", n, sys.NumDevices(), *dataDir)
		}
	} else {
		sys, err = locater.New(cfg)
		if err != nil {
			log.Fatalf("assembling LOCATER: %v", err)
		}
	}

	// Preload the CSV only into an empty store: with -data-dir, a restart
	// already recovers the events, and re-ingesting the CSV would duplicate
	// them under fresh IDs.
	if *eventsPath != "" && sys.NumEvents() == 0 {
		ef, err := os.Open(*eventsPath)
		if err != nil {
			log.Fatalf("opening events: %v", err)
		}
		events, err := event.ReadCSV(ef)
		ef.Close()
		if err != nil {
			log.Fatalf("parsing events: %v", err)
		}
		if err := sys.Ingest(events); err != nil {
			log.Fatalf("ingesting: %v", err)
		}
		if err := sys.EstimateDeltas(0.9, 2*time.Minute, 15*time.Minute); err != nil {
			log.Fatalf("estimating deltas: %v", err)
		}
		fmt.Printf("preloaded %d events for %d devices\n", sys.NumEvents(), sys.NumDevices())
	}

	handler := srv.NewWithOptions(sys, srv.Options{Admission: srv.AdmissionOptions{
		Disabled:        !*admission,
		Locate:          srv.QueueConfig{MaxConcurrent: *maxConcurrent, MaxQueue: *maxQueue},
		DefaultDeadline: *defaultDeadline,
		MaxDeadline:     *maxDeadline,
		ShedBatchAt:     *shedBatchAt,
	}})
	if *pprofFlag {
		handler.EnablePprof()
		fmt.Printf("pprof enabled at %s/debug/pprof/\n", *addr)
	}
	server := &http.Server{Addr: *addr, Handler: handler}

	// Graceful shutdown: stop accepting requests, drain in-flight ones,
	// then checkpoint and close the durable store so the next start
	// recovers from a snapshot instead of replaying the whole log.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errCh := make(chan error, 1)
	go func() {
		fmt.Printf("LOCATER serving %s on %s\n", building.Name(), *addr)
		errCh <- server.ListenAndServe()
	}()

	select {
	case err := <-errCh:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			log.Fatal(err)
		}
	case <-ctx.Done():
		fmt.Println("shutting down…")
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := server.Shutdown(shutdownCtx); err != nil {
			log.Printf("draining requests: %v", err)
		}
	}
	if err := sys.Close(); err != nil {
		log.Fatalf("checkpointing event store: %v", err)
	}
}
