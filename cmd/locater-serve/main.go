// Command locater-serve exposes a LOCATER deployment — a single system or a
// sharded cluster — as an HTTP JSON service: the deployment mode of the
// paper's prototype, where applications (HVAC control, occupancy
// dashboards) query the cleaning engine online while connectivity events
// stream in.
//
// Endpoints (versioned under /v1/; the unversioned paths remain as legacy
// aliases):
//
//	GET  /v1/locate?device=MAC&time=2006-01-02T15:04:05Z → localization result
//	POST /v1/locate/batch  body: {"queries":[{device,time}...], "workers":N}
//	                                                     → batch results, in order
//	POST /v1/ingest  body: JSON array of {device, time, ap} → ingest events
//	GET  /v1/stats                                       → deployment counters
//	GET  /v1/healthz                                     → liveness
//	GET  /debug/pprof/                                   → Go profiler (-pprof only)
//
// Errors come back as the uniform envelope {"code","message","error",
// "retry_after_ms"?}; see internal/srv.ErrorEnvelope.
//
// With -shards N > 1 the deployment is a cluster of N independent engines
// behind a router: -shard-by device hashes one building's devices across
// the shards (parallel ingest), -shard-by building gives each shard its own
// building (-building then takes a comma-separated list of metadata files,
// one per shard). Each shard persists to its own shard-NNN subdirectory
// under -data-dir and recovers independently on startup.
//
// With -data-dir the deployment is durable: every acknowledged ingest is
// written ahead to a segmented log under the directory before the HTTP
// response, a background checkpoint compacts the log on -snapshot-interval,
// and a restart — graceful or a kill — recovers the acknowledged state
// before listening. -fsync chooses between machine-crash durability
// (default) and OS-buffered logging.
//
// Usage:
//
//	locater-serve -events data/dbh-events.csv -building data/dbh-building.json -addr :8080
//	locater-serve -building data/dbh-building.json -data-dir /var/lib/locater -fsync -snapshot-interval 5m
//	locater-serve -building data/dbh-building.json -shards 4 -data-dir /var/lib/locater
//	locater-serve -shard-by building -building b1.json,b2.json -addr :8080
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"locater"
	"locater/internal/cluster"
	"locater/internal/event"
	"locater/internal/space"
	"locater/internal/srv"
)

func main() {
	var (
		eventsPath   = flag.String("events", "", "connectivity CSV to preload (optional; skipped when -data-dir already holds events)")
		buildingPath = flag.String("building", "", "building metadata JSON (required); with -shard-by building, a comma-separated list, one per shard")
		addr         = flag.String("addr", ":8080", "listen address")
		shards       = flag.Int("shards", 1, "number of independent engine shards (1 = single system)")
		shardBy      = flag.String("shard-by", cluster.ByDevice, "shard routing policy: device (hash one building's devices) | building (one building per shard)")
		variant      = flag.String("variant", "dependent", "independent | dependent")
		dataDir      = flag.String("data-dir", "", "directory for the durable event store (WAL + snapshots); empty = in-memory only")
		fsync        = flag.Bool("fsync", true, "with -data-dir: fsync acknowledged writes (group commit); off = flush to OS only")
		snapInterval = flag.Duration("snapshot-interval", 5*time.Minute, "with -data-dir: background checkpoint period (0 = only at shutdown)")
		mmapColdTier = flag.Bool("mmap", true, "with -data-dir: memory-map cold-tier segment files (OS-owned residency); off = portable read-at")
		pprofFlag    = flag.Bool("pprof", false, "expose Go's runtime profiler under /debug/pprof/ (off by default; profiling data reveals internals)")

		admission       = flag.Bool("admission", true, "admission control: bounded per-endpoint queues, deadline-aware 429s, batch shedding")
		maxConcurrent   = flag.Int("max-concurrent", 0, "executing /locate slots (default 2×GOMAXPROCS)")
		maxQueue        = flag.Int("max-queue", 0, "waiting /locate slots before 429 (default 8×GOMAXPROCS)")
		defaultDeadline = flag.Duration("default-deadline", 0, "deadline applied to requests without deadline_ms (default 5s)")
		maxDeadline     = flag.Duration("max-deadline", 0, "clamp on client-requested deadlines (default 30s)")
		shedBatchAt     = flag.Float64("shed-batch-at", 0, "queue occupancy above which /locate/batch is shed (default 0.5)")
		staticAdmission = flag.Bool("static-admission", false, "disable the adaptive queue bound (Little's law over the EWMA service time) and use the configured -max-queue verbatim")
		targetQueueWait = flag.Duration("target-queue-wait", 0, "adaptive admission's target worst-case queue wait (default 2s)")

		cleansing      = flag.Bool("cleansing", false, "ingest-time cleansing: dedupe re-associations, drop impossible transitions, flag degenerate devices; rejects land in the quarantine (GET /v1/quarantine)")
		quarantineCap  = flag.Int("quarantine-cap", 0, "with -cleansing: quarantine ring size in entries (default 1024)")
		reassocWindow  = flag.Duration("cleanse-reassoc-window", 0, "with -cleansing: same-AP re-association dedupe window (default 10s)")
		flapWindow     = flag.Duration("cleanse-flap-window", 0, "with -cleansing: A→B→A oscillation window (default 30s)")
		minTransit     = flag.Duration("cleanse-min-transit", 0, "with -cleansing: minimum time between non-adjacent APs (default 1s)")
		degenEventsMin = flag.Int("cleanse-degenerate-rate", 0, "with -cleansing: sustained events/minute above which a device is flagged degenerate (default 120)")
	)
	flag.Parse()

	if *buildingPath == "" {
		flag.Usage()
		os.Exit(2)
	}
	var buildings []*locater.Building
	for _, p := range strings.Split(*buildingPath, ",") {
		bf, err := os.Open(strings.TrimSpace(p))
		if err != nil {
			log.Fatalf("opening building metadata: %v", err)
		}
		b, err := space.ReadJSON(bf)
		bf.Close()
		if err != nil {
			log.Fatalf("parsing building metadata %s: %v", p, err)
		}
		buildings = append(buildings, b)
	}
	building := buildings[0]
	if *shardBy != cluster.ByBuilding && len(buildings) > 1 {
		log.Fatalf("multiple -building files need -shard-by building")
	}

	v := locater.DependentVariant
	if *variant == "independent" {
		v = locater.IndependentVariant
	}
	cfg := locater.Config{
		Building:           building,
		Variant:            v,
		EnableCache:        true,
		PromotionsPerRound: 8,
		ColdTierMmap:       *mmapColdTier,

		EnableCleansing:                  *cleansing,
		QuarantineCap:                    *quarantineCap,
		CleanseReassocWindow:             *reassocWindow,
		CleanseFlapWindow:                *flapWindow,
		CleanseMinTransit:                *minTransit,
		CleanseDegenerateEventsPerMinute: *degenEventsMin,
	}
	if *cleansing {
		fmt.Println("ingest-time cleansing enabled; quarantine at /v1/quarantine")
	}
	popts := locater.PersistOptions{
		Fsync:            *fsync,
		SnapshotInterval: *snapInterval,
	}

	// A single device-sharded "cluster" of one is exactly a bare System, so
	// only assemble the router when it routes. ByBuilding always goes
	// through the cluster (even with one building, for the uniform layout).
	var sys locater.Locater
	var err error
	clustered := *shards > 1 || *shardBy == cluster.ByBuilding
	switch {
	case clustered:
		copts := cluster.Options{Shards: *shards, ShardBy: *shardBy}
		if *shardBy == cluster.ByBuilding {
			copts.Buildings = buildings
		}
		if *dataDir != "" {
			sys, err = cluster.Open(*dataDir, cfg, popts, copts)
		} else {
			sys, err = cluster.New(cfg, copts)
		}
	case *dataDir != "":
		sys, err = locater.Open(*dataDir, cfg, popts)
	default:
		sys, err = locater.New(cfg)
	}
	if err != nil {
		log.Fatalf("assembling LOCATER: %v", err)
	}
	if *dataDir != "" {
		if n := sys.NumEvents(); n > 0 {
			fmt.Printf("recovered %d events for %d devices from %s\n", n, sys.NumDevices(), *dataDir)
		}
	}
	if sh, ok := sys.(locater.Sharded); ok {
		fmt.Printf("sharded deployment: %d shards, routed by %s\n", sh.NumShards(), sh.ShardPolicy())
	}

	// Preload the CSV only into an empty store: with -data-dir, a restart
	// already recovers the events, and re-ingesting the CSV would duplicate
	// them under fresh IDs.
	if *eventsPath != "" && sys.NumEvents() == 0 {
		ef, err := os.Open(*eventsPath)
		if err != nil {
			log.Fatalf("opening events: %v", err)
		}
		events, err := event.ReadCSV(ef)
		ef.Close()
		if err != nil {
			log.Fatalf("parsing events: %v", err)
		}
		if err := sys.Ingest(events); err != nil {
			log.Fatalf("ingesting: %v", err)
		}
		if err := sys.EstimateDeltas(0.9, 2*time.Minute, 15*time.Minute); err != nil {
			log.Fatalf("estimating deltas: %v", err)
		}
		fmt.Printf("preloaded %d events for %d devices\n", sys.NumEvents(), sys.NumDevices())
	}

	handler := srv.NewWithOptions(sys, srv.Options{Admission: srv.AdmissionOptions{
		Disabled:        !*admission,
		Locate:          srv.QueueConfig{MaxConcurrent: *maxConcurrent, MaxQueue: *maxQueue},
		DefaultDeadline: *defaultDeadline,
		MaxDeadline:     *maxDeadline,
		ShedBatchAt:     *shedBatchAt,
		Static:          *staticAdmission,
		TargetQueueWait: *targetQueueWait,
	}})
	if *pprofFlag {
		handler.EnablePprof()
		fmt.Printf("pprof enabled at %s/debug/pprof/\n", *addr)
	}
	server := &http.Server{Addr: *addr, Handler: handler}

	// Graceful shutdown: stop accepting requests, drain in-flight ones,
	// then checkpoint and close the durable store so the next start
	// recovers from a snapshot instead of replaying the whole log.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errCh := make(chan error, 1)
	go func() {
		fmt.Printf("LOCATER serving %s on %s\n", building.Name(), *addr)
		errCh <- server.ListenAndServe()
	}()

	select {
	case err := <-errCh:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			log.Fatal(err)
		}
	case <-ctx.Done():
		fmt.Println("shutting down…")
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := server.Shutdown(shutdownCtx); err != nil {
			log.Printf("draining requests: %v", err)
		}
	}
	if err := sys.Close(); err != nil {
		log.Fatalf("checkpointing event store: %v", err)
	}
}
