package main

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"locater/internal/sim"
	"locater/internal/srv"
)

// opCursor hands out schedule operations round-robin, remembering the
// unit-rate gap to the previous op so the dispatcher can pace arrivals at
// any target rate. Shared across calibration and phases so ingest replay
// progresses through the window instead of restarting.
type opCursor struct {
	mu  sync.Mutex
	ops []sim.Op
	idx int
}

// next returns the next op and the unit-rate inter-arrival gap before it.
func (c *opCursor) next() (sim.Op, time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	op := c.ops[c.idx]
	var gap time.Duration
	if c.idx == 0 {
		if n := len(c.ops); n > 1 {
			// Wrap boundary: use the schedule's mean gap (1s by unit-rate
			// normalization) rather than a zero or a full-span gap.
			gap = time.Duration(int64(c.ops[n-1].At) / int64(n))
		} else {
			gap = time.Second
		}
	} else {
		gap = op.At - c.ops[c.idx-1].At
	}
	c.idx = (c.idx + 1) % len(c.ops)
	return op, gap
}

// rejectionCounts is the 429 taxonomy breakdown of one phase.
type rejectionCounts struct {
	QueueFull          int64 `json:"queue_full"`
	Shed               int64 `json:"shed"`
	DeadlineInfeasible int64 `json:"deadline_infeasible"`
	DeadlineQueue      int64 `json:"deadline_queue"`
	Other              int64 `json:"other"`
}

func (r *rejectionCounts) add(code string) {
	switch code {
	case "queue_full":
		r.QueueFull++
	case "shed":
		r.Shed++
	case "deadline_infeasible":
		r.DeadlineInfeasible++
	case "deadline_queue":
		r.DeadlineQueue++
	default:
		r.Other++
	}
}

func (r rejectionCounts) total() int64 {
	return r.QueueFull + r.Shed + r.DeadlineInfeasible + r.DeadlineQueue + r.Other
}

// latencySummary reports exact (sorted-sample) percentiles over the OK
// population, in milliseconds.
type latencySummary struct {
	P50  float64 `json:"p50_ms"`
	P99  float64 `json:"p99_ms"`
	P999 float64 `json:"p999_ms"`
	Max  float64 `json:"max_ms"`
}

func summarize(lat []time.Duration) latencySummary {
	if len(lat) == 0 {
		return latencySummary{}
	}
	sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
	pick := func(q float64) float64 {
		i := int(q*float64(len(lat))+0.5) - 1
		if i < 0 {
			i = 0
		}
		if i >= len(lat) {
			i = len(lat) - 1
		}
		return float64(lat[i]) / float64(time.Millisecond)
	}
	return latencySummary{
		P50:  pick(0.50),
		P99:  pick(0.99),
		P999: pick(0.999),
		Max:  float64(lat[len(lat)-1]) / float64(time.Millisecond),
	}
}

// trajPoint is one /stats sample during a phase: the per-tier cache-hit
// counters and the admission aggregate, timestamped from phase start.
type trajPoint struct {
	AtMillis     int64 `json:"at_ms"`
	ResultHits   int64 `json:"result_cache_hits"`
	AffinityHits int64 `json:"affinity_cache_hits"`
	ModelHits    int64 `json:"coarse_model_hits"`
	Admitted     int64 `json:"admitted"`
	Rejected     int64 `json:"rejected"`
	Queued       int64 `json:"queued"`
	InFlight     int64 `json:"in_flight"`
}

func trajPointOf(st *srv.StatsResponse, at time.Duration) trajPoint {
	p := trajPoint{
		AtMillis:     at.Milliseconds(),
		ResultHits:   st.Caches.Results.Hits,
		AffinityHits: st.Caches.Affinity.Hits,
		ModelHits:    st.Caches.CoarseModels.Hits,
	}
	for _, q := range []srv.AdmissionQueueResponse{
		st.Admission.Locate, st.Admission.Batch, st.Admission.Ingest,
	} {
		p.Admitted += q.Admitted
		p.Rejected += q.RejectedQueueFull + q.RejectedDeadline + q.RejectedShed + q.TimedOutInQueue
		p.Queued += int64(q.Queued)
		p.InFlight += int64(q.InFlight)
	}
	return p
}

// phaseResult is one load phase's outcome: the offered/served accounting,
// the error taxonomy, goodput, and the OK-latency percentiles.
type phaseResult struct {
	Name      string  `json:"name"`
	TargetQPS float64 `json:"target_qps"`
	Seconds   float64 `json:"seconds"`

	// Offered = Sent + ClientDropped. ClientDropped counts arrivals the
	// open-loop dispatcher could not launch because max-inflight was
	// reached — kept on the books so coordinated omission cannot hide
	// server slowness as a lower offered rate.
	Offered       int64 `json:"offered"`
	Sent          int64 `json:"sent"`
	ClientDropped int64 `json:"client_dropped"`

	OK               int64           `json:"ok"`
	Rejected         rejectionCounts `json:"rejected"`
	DeadlineExceeded int64           `json:"deadline_exceeded"`
	Errors           int64           `json:"errors"`

	// GoodputQPS counts OK responses inside the hard deadline per second;
	// HardDeadlineViolations are OK responses that arrived later (never
	// rejected, never 504ed — the failure mode admission control exists to
	// prevent).
	GoodputQPS             float64 `json:"goodput_qps"`
	HardDeadlineViolations int64   `json:"hard_deadline_violations"`

	Latency    latencySummary `json:"latency"`
	Trajectory []trajPoint    `json:"trajectory,omitempty"`
}

// runOpenLoop offers ops at rate/s for dur, regardless of completion pace
// (open loop: arrivals do not wait for responses). At most maxInflight
// requests run at once; arrivals beyond that are counted client_dropped and
// NOT retried — in an overload experiment, dropping at the client is itself
// a datum.
func runOpenLoop(d driver, cur *opCursor, name string, rate float64, dur,
	deadline, hard time.Duration, maxInflight int, statsEvery time.Duration) phaseResult {

	res := phaseResult{Name: name, TargetQPS: rate}
	var (
		mu       sync.Mutex
		lat      []time.Duration
		inflight atomic.Int64
		wg       sync.WaitGroup
	)

	start := time.Now()
	stopSampler := make(chan struct{})
	var samplerWG sync.WaitGroup
	if statsEvery > 0 {
		samplerWG.Add(1)
		go func() {
			defer samplerWG.Done()
			tick := time.NewTicker(statsEvery)
			defer tick.Stop()
			for {
				select {
				case <-stopSampler:
					return
				case <-tick.C:
					if st, err := d.stats(); err == nil {
						p := trajPointOf(st, time.Since(start))
						mu.Lock()
						res.Trajectory = append(res.Trajectory, p)
						mu.Unlock()
					}
				}
			}
		}()
	}

	due := start
	for {
		op, gap := cur.next()
		due = due.Add(time.Duration(float64(gap) / rate))
		if due.Sub(start) > dur {
			break
		}
		if wait := time.Until(due); wait > 0 {
			time.Sleep(wait)
		}
		res.Offered++
		if inflight.Load() >= int64(maxInflight) {
			res.ClientDropped++
			continue
		}
		res.Sent++
		inflight.Add(1)
		wg.Add(1)
		go func(op sim.Op) {
			defer wg.Done()
			defer inflight.Add(-1)
			out := doOp(d, op, deadline)
			mu.Lock()
			defer mu.Unlock()
			switch out.kind {
			case outOK:
				if out.latency > hard {
					res.HardDeadlineViolations++
				} else {
					res.OK++
					lat = append(lat, out.latency)
				}
			case outRejected:
				res.Rejected.add(out.code)
			case outDeadline:
				res.DeadlineExceeded++
			default:
				res.Errors++
			}
		}(op)
	}
	wg.Wait()
	close(stopSampler)
	samplerWG.Wait()

	res.Seconds = time.Since(start).Seconds()
	res.GoodputQPS = float64(res.OK) / res.Seconds
	res.Latency = summarize(lat)
	return res
}

// calibrate measures the sustainable rate with a closed loop: workers
// requests in flight, each issuing the next op as soon as the previous one
// answers. The OK completion rate is the server's demonstrated capacity at
// bounded concurrency.
func calibrate(d driver, cur *opCursor, workers int, dur, deadline time.Duration) float64 {
	var ok atomic.Int64
	deadlineT := time.Now().Add(dur)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for time.Now().Before(deadlineT) {
				op, _ := cur.next()
				if out := doOp(d, op, deadline); out.kind == outOK {
					ok.Add(1)
				}
			}
		}()
	}
	wg.Wait()
	rate := float64(ok.Load()) / dur.Seconds()
	if rate < 1 {
		rate = 1
	}
	return rate
}

// doOp executes one scheduled op and classifies the outcome.
func doOp(d driver, op sim.Op, deadline time.Duration) outcome {
	method, path, body, err := buildRequest(op, deadline)
	if err != nil {
		return outcome{kind: outError, code: "build"}
	}
	start := time.Now()
	status, respBody, err := d.do(method, path, body)
	return classify(status, respBody, err, time.Since(start))
}
