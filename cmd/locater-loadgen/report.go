package main

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
)

// writeBenchJSON emits the machine-readable report for the CI artifact
// pipeline (same shape and naming convention as locater-bench's BENCH_*
// reports).
func writeBenchJSON(outDir, name string, v any) error {
	if outDir == "" {
		outDir = "."
	}
	if err := os.MkdirAll(outDir, 0o755); err != nil {
		return err
	}
	data, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return err
	}
	path := filepath.Join(outDir, name)
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", path)
	return nil
}
