// Command locater-loadgen is the scenario-driven load generator and SLO
// harness: it turns a simulated building scenario into a deterministic
// request schedule (reads, batches, live ingest replay with optional dirty
// traces), drives it against a LOCATER server — in-process by default
// (hermetic, no sockets), or a remote locater-serve via -target — and
// reports sustained QPS, exact p50/p99/p999 latencies, goodput under
// overload, the rejection taxonomy, and per-tier cache-hit trajectories as
// BENCH_slo.json.
//
// The run is phased: a closed-loop calibration measures the sustainable
// rate S, then an open-loop plateau phase offers plateau-frac×S and an
// overload phase offers overload×S. With -compare the whole sequence runs
// twice — admission control on, then off — so the report shows graceful
// degradation against the collapse it replaces.
//
// Usage:
//
//	locater-loadgen -scenario office -days 3 -ops 2000 -seed 7
//	locater-loadgen -compare -goodput-floor 0.7 -require-bounded
//	locater-loadgen -target http://localhost:8080 -rate 500 -phase-duration 30s
//	locater-loadgen -arrival bursty -diurnal -dirty-frac 0.2
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"locater"
	"locater/internal/cluster"
	"locater/internal/sim"
	"locater/internal/srv"
)

type flags struct {
	// Scenario and schedule.
	scenario    string
	days        int
	scale       int
	perClass    int
	seed        int64
	ops         int
	readFrac    float64
	batchFrac   float64
	batchSize   int
	ingestChunk int
	arrival     string
	burstFactor float64
	burstFrac   float64
	diurnal     bool
	dirtyFrac   float64

	// Target and phases.
	target        string
	variant       string
	shards        int
	concurrency   int
	rate          float64
	calibrateDur  time.Duration
	plateauFrac   float64
	overload      float64
	phaseDur      time.Duration
	deadline      time.Duration
	hardDeadline  time.Duration
	maxInflight   int
	statsInterval time.Duration

	// Admission arms and gates.
	compare       bool
	admission     bool
	goodputFloor  float64
	requireBound  bool
	benchOut      string
	maxConcurrent int
	maxQueue      int
}

func parseFlags() *flags {
	f := &flags{}
	flag.StringVar(&f.scenario, "scenario", "office", "building scenario: dbh | office | university | mall | airport")
	flag.IntVar(&f.days, "days", 3, "simulated days (last day replays live)")
	flag.IntVar(&f.scale, "scale", 1, "scenario scale factor (non-dbh scenarios)")
	flag.IntVar(&f.perClass, "per-class", 4, "people per predictability class (dbh scenario)")
	flag.Int64Var(&f.seed, "seed", 1, "seed for dataset and schedule generation")
	flag.IntVar(&f.ops, "ops", 2000, "scheduled operations per generated workload")
	flag.Float64Var(&f.readFrac, "read-frac", 0.9, "fraction of ops that are reads")
	flag.Float64Var(&f.batchFrac, "batch-frac", 0.1, "fraction of reads issued as LocateBatch")
	flag.IntVar(&f.batchSize, "batch-size", 16, "queries per batch op")
	flag.IntVar(&f.ingestChunk, "ingest-chunk", 64, "max events per ingest op")
	flag.StringVar(&f.arrival, "arrival", "poisson", "arrival process: poisson | uniform | bursty")
	flag.Float64Var(&f.burstFactor, "burst-factor", 4, "bursty: burst-state rate multiplier")
	flag.Float64Var(&f.burstFrac, "burst-frac", 0.2, "bursty: fraction of arrivals in burst state")
	flag.BoolVar(&f.diurnal, "diurnal", false, "modulate arrivals with the scenario's hourly occupancy wave")
	flag.Float64Var(&f.dirtyFrac, "dirty-frac", 0.1, "fraction of ingest chunks carrying injected dirt")

	flag.StringVar(&f.target, "target", "", "remote locater-serve base URL; empty = in-process server (hermetic)")
	flag.StringVar(&f.variant, "variant", "dependent", "independent | dependent (in-process server)")
	flag.IntVar(&f.shards, "shards", 1, "in-process server: device-sharded cluster size (1 = single system)")
	flag.IntVar(&f.concurrency, "concurrency", 0, "closed-loop calibration workers (default GOMAXPROCS)")
	flag.Float64Var(&f.rate, "rate", 0, "fixed sustainable rate S in ops/s; 0 = calibrate")
	flag.DurationVar(&f.calibrateDur, "calibrate-duration", 3*time.Second, "closed-loop calibration length")
	flag.Float64Var(&f.plateauFrac, "plateau-frac", 0.7, "plateau phase rate as a fraction of S")
	flag.Float64Var(&f.overload, "overload", 2, "overload phase rate as a multiple of S")
	flag.DurationVar(&f.phaseDur, "phase-duration", 8*time.Second, "open-loop phase length")
	flag.DurationVar(&f.deadline, "deadline", 500*time.Millisecond, "per-request deadline_ms sent with every op")
	flag.DurationVar(&f.hardDeadline, "hard-deadline", 0, "SLO hard deadline for goodput (default 2×deadline)")
	flag.IntVar(&f.maxInflight, "max-inflight", 512, "open-loop client concurrency cap (overflow = client_dropped)")
	flag.DurationVar(&f.statsInterval, "stats-interval", time.Second, "/stats trajectory sampling period (0 = off)")

	flag.BoolVar(&f.compare, "compare", false, "run both arms: admission on, then off (in-process only)")
	flag.BoolVar(&f.admission, "admission", true, "admission control for the single-arm run")
	flag.Float64Var(&f.goodputFloor, "goodput-floor", 0, "fail unless overload goodput ≥ floor × plateau goodput (admission arm; 0 = no gate)")
	flag.BoolVar(&f.requireBound, "require-bounded", false, "fail if any OK response exceeded the hard deadline (admission arm)")
	flag.StringVar(&f.benchOut, "bench-out", ".", "directory for BENCH_slo.json")
	flag.IntVar(&f.maxConcurrent, "max-concurrent", 0, "in-process server: executing /locate slots (default 2×GOMAXPROCS)")
	flag.IntVar(&f.maxQueue, "max-queue", 0, "in-process server: waiting /locate slots (default 8×GOMAXPROCS)")
	flag.Parse()

	if f.concurrency <= 0 {
		f.concurrency = runtime.GOMAXPROCS(0)
	}
	if f.hardDeadline <= 0 {
		f.hardDeadline = 2 * f.deadline
	}
	return f
}

// buildScenario resolves a scenario name. Factored out (with buildWorkload)
// so the golden-file determinism test exercises the exact pipeline the
// binary runs.
func buildScenario(name string, scale, perClass int) (sim.Scenario, error) {
	switch name {
	case "dbh":
		return sim.DBH(perClass)
	case "office":
		return sim.Office(scale)
	case "university":
		return sim.University(scale)
	case "mall":
		return sim.Mall(scale)
	case "airport":
		return sim.Airport(scale)
	}
	return sim.Scenario{}, fmt.Errorf("unknown scenario %q", name)
}

func (f *flags) workloadSpec() sim.WorkloadSpec {
	return sim.WorkloadSpec{
		Ops:           f.ops,
		Seed:          f.seed,
		ReadFraction:  f.readFrac,
		BatchFraction: f.batchFrac,
		BatchSize:     f.batchSize,
		IngestChunk:   f.ingestChunk,
		Arrival:       f.arrival,
		BurstFactor:   f.burstFactor,
		BurstFraction: f.burstFrac,
		Diurnal:       f.diurnal,
		DirtyFraction: f.dirtyFrac,
	}
}

// buildWorkload generates the dataset and its deterministic schedule.
func buildWorkload(f *flags) (*sim.Dataset, *sim.Workload, error) {
	sc, err := buildScenario(f.scenario, f.scale, f.perClass)
	if err != nil {
		return nil, nil, err
	}
	start := time.Date(2026, 1, 5, 0, 0, 0, 0, time.UTC)
	ds, err := sim.Generate(sc.Config(start, f.days, f.seed))
	if err != nil {
		return nil, nil, err
	}
	w, err := sim.BuildWorkload(ds, f.workloadSpec())
	if err != nil {
		return nil, nil, err
	}
	return ds, w, nil
}

// newInprocServer assembles a fresh in-process server over the workload's
// history split — a bare system, or a device-sharded cluster with -shards
// N > 1. Each arm gets its own engine so the comparison starts from
// identical state.
func newInprocServer(ds *sim.Dataset, w *sim.Workload, f *flags, admission bool) (*srv.Server, error) {
	v := locater.DependentVariant
	if f.variant == "independent" {
		v = locater.IndependentVariant
	}
	cfg := locater.Config{
		Building:           ds.Building,
		Variant:            v,
		EnableCache:        true,
		HistoryDays:        14,
		PromotionsPerRound: 8,
	}
	var sys locater.Locater
	var err error
	if f.shards > 1 {
		sys, err = cluster.New(cfg, cluster.Options{Shards: f.shards})
	} else {
		sys, err = locater.New(cfg)
	}
	if err != nil {
		return nil, err
	}
	if err := sys.Ingest(w.History); err != nil {
		return nil, err
	}
	if err := sys.EstimateDeltas(0.9, 2*time.Minute, 15*time.Minute); err != nil {
		return nil, err
	}
	return srv.NewWithOptions(sys, srv.Options{Admission: srv.AdmissionOptions{
		Disabled:    !admission,
		Locate:      srv.QueueConfig{MaxConcurrent: f.maxConcurrent, MaxQueue: f.maxQueue},
		MaxDeadline: f.hardDeadline,
	}}), nil
}

// modeReport is one arm (admission on or off) of the comparison.
type modeReport struct {
	Admission      bool          `json:"admission"`
	SustainableQPS float64       `json:"sustainable_qps"`
	Phases         []phaseResult `json:"phases"`
	// GoodputRetention = overload goodput ÷ plateau goodput: ≥ 1 means the
	// server kept serving its plateau capacity while overloaded.
	GoodputRetention float64 `json:"goodput_retention"`
}

// sloReport is BENCH_slo.json.
type sloReport struct {
	Name           string  `json:"name"`
	Scenario       string  `json:"scenario"`
	Days           int     `json:"days"`
	Seed           int64   `json:"seed"`
	Ops            int     `json:"ops"`
	Arrival        string  `json:"arrival"`
	Diurnal        bool    `json:"diurnal"`
	DirtyFraction  float64 `json:"dirty_fraction"`
	DeadlineMillis int64   `json:"deadline_ms"`
	HardMillis     int64   `json:"hard_deadline_ms"`
	HistoryEvents  int     `json:"history_events"`
	ReplayEvents   int     `json:"replay_events"`

	Modes []modeReport `json:"modes"`
}

// runMode executes calibrate → plateau → overload against one driver.
func runMode(d driver, w *sim.Workload, f *flags, admission bool) modeReport {
	cur := &opCursor{ops: w.Ops}
	rep := modeReport{Admission: admission}

	rep.SustainableQPS = f.rate
	if rep.SustainableQPS <= 0 {
		fmt.Printf("  calibrating (%d workers, %v)...\n", f.concurrency, f.calibrateDur)
		rep.SustainableQPS = calibrate(d, cur, f.concurrency, f.calibrateDur, f.deadline)
	}
	fmt.Printf("  sustainable rate S ≈ %.0f ops/s\n", rep.SustainableQPS)

	phases := []struct {
		name string
		rate float64
	}{
		{"plateau", f.plateauFrac * rep.SustainableQPS},
		{"overload", f.overload * rep.SustainableQPS},
	}
	for _, ph := range phases {
		fmt.Printf("  phase %-9s offering %.0f ops/s for %v...\n", ph.name, ph.rate, f.phaseDur)
		res := runOpenLoop(d, cur, ph.name, ph.rate, f.phaseDur,
			f.deadline, f.hardDeadline, f.maxInflight, f.statsInterval)
		fmt.Printf("    ok %d  rejected %d  deadline %d  errors %d  dropped %d  goodput %.0f/s  p99 %.1fms\n",
			res.OK, res.Rejected.total(), res.DeadlineExceeded, res.Errors,
			res.ClientDropped, res.GoodputQPS, res.Latency.P99)
		rep.Phases = append(rep.Phases, res)
	}
	if len(rep.Phases) == 2 && rep.Phases[0].GoodputQPS > 0 {
		rep.GoodputRetention = rep.Phases[1].GoodputQPS / rep.Phases[0].GoodputQPS
	}
	fmt.Printf("  goodput retention under %.1fx overload: %.2f\n", f.overload, rep.GoodputRetention)
	return rep
}

func main() {
	f := parseFlags()

	rep := sloReport{
		Name:           "slo",
		Scenario:       f.scenario,
		Days:           f.days,
		Seed:           f.seed,
		Ops:            f.ops,
		Arrival:        f.arrival,
		Diurnal:        f.diurnal,
		DirtyFraction:  f.dirtyFrac,
		DeadlineMillis: f.deadline.Milliseconds(),
		HardMillis:     f.hardDeadline.Milliseconds(),
	}

	if f.target != "" {
		// Remote target: one arm, labeled by -admission (the server's
		// actual configuration is its own business).
		if f.compare {
			fmt.Fprintln(os.Stderr, "-compare needs in-process servers; drop -target or -compare")
			os.Exit(2)
		}
		_, w, err := buildWorkload(f)
		if err != nil {
			fmt.Fprintf(os.Stderr, "workload: %v\n", err)
			os.Exit(1)
		}
		rep.HistoryEvents, rep.ReplayEvents = len(w.History), countReplay(w)
		fmt.Printf("arm: remote %s\n", f.target)
		rep.Modes = append(rep.Modes, runMode(newRemoteDriver(f.target, f.hardDeadline), w, f, f.admission))
	} else {
		ds, w, err := buildWorkload(f)
		if err != nil {
			fmt.Fprintf(os.Stderr, "workload: %v\n", err)
			os.Exit(1)
		}
		rep.HistoryEvents, rep.ReplayEvents = len(w.History), countReplay(w)
		fmt.Printf("workload: %s ×%d, %d days, %d history events, %d scheduled ops (seed %d)\n",
			f.scenario, f.scale, f.days, len(w.History), len(w.Ops), f.seed)

		arms := []bool{f.admission}
		if f.compare {
			arms = []bool{true, false}
		}
		for _, admission := range arms {
			fmt.Printf("arm: in-process, admission=%t\n", admission)
			server, err := newInprocServer(ds, w, f, admission)
			if err != nil {
				fmt.Fprintf(os.Stderr, "server: %v\n", err)
				os.Exit(1)
			}
			rep.Modes = append(rep.Modes, runMode(inprocDriver{server}, w, f, admission))
		}
	}

	if err := writeBenchJSON(f.benchOut, "BENCH_slo.json", rep); err != nil {
		fmt.Fprintf(os.Stderr, "writing report: %v\n", err)
		os.Exit(1)
	}

	if failed := gate(rep, f); failed {
		os.Exit(1)
	}
}

// gate enforces the SLO floors on the admission arm; returns true on
// failure.
func gate(rep sloReport, f *flags) bool {
	failed := false
	for _, m := range rep.Modes {
		if !m.Admission {
			continue
		}
		if f.goodputFloor > 0 && m.GoodputRetention < f.goodputFloor {
			fmt.Fprintf(os.Stderr, "GATE: goodput retention %.2f < floor %.2f\n",
				m.GoodputRetention, f.goodputFloor)
			failed = true
		}
		if f.requireBound {
			for _, ph := range m.Phases {
				if ph.HardDeadlineViolations > 0 {
					fmt.Fprintf(os.Stderr,
						"GATE: %d OK responses exceeded the hard deadline (%v) in phase %s without a 429/504\n",
						ph.HardDeadlineViolations, f.hardDeadline, ph.Name)
					failed = true
				}
			}
		}
	}
	return failed
}

func countReplay(w *sim.Workload) int {
	n := 0
	for _, op := range w.Ops {
		n += len(op.Events)
	}
	return n
}
