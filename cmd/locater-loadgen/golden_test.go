package main

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"
	"time"

	"locater/internal/sim"
)

var update = flag.Bool("update", false, "rewrite golden files")

// goldenFlags pins the exact spec behind testdata/office_schedule.golden.
// It runs through the same buildScenario/workloadSpec pipeline as the
// binary, so a change that breaks schedule determinism (or silently changes
// schedule semantics) fails here before it reaches CI's fixed-seed SLO run.
func goldenFlags() *flags {
	return &flags{
		scenario: "office", days: 2, scale: 1, perClass: 4, seed: 11,
		ops: 120, readFrac: 0.8, batchFrac: 0.2, batchSize: 4,
		ingestChunk: 32, arrival: "bursty", burstFactor: 4, burstFrac: 0.2,
		diurnal: true, dirtyFrac: 0.25,
	}
}

func renderSchedule(t *testing.T) []byte {
	t.Helper()
	f := goldenFlags()
	sc, err := buildScenario(f.scenario, f.scale, f.perClass)
	if err != nil {
		t.Fatal(err)
	}
	start := time.Date(2026, 1, 5, 0, 0, 0, 0, time.UTC)
	ds, err := sim.Generate(sc.Config(start, f.days, f.seed))
	if err != nil {
		t.Fatal(err)
	}
	w, err := sim.BuildWorkload(ds, f.workloadSpec())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := w.WriteCanonical(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestScheduleGolden: identical seed + spec must produce a byte-identical
// schedule, across runs and across machines. Regenerate with -update after
// an intentional schedule change.
func TestScheduleGolden(t *testing.T) {
	got := renderSchedule(t)
	path := filepath.Join("testdata", "office_schedule.golden")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run `go test ./cmd/locater-loadgen -update` after intentional changes)", err)
	}
	if !bytes.Equal(got, want) {
		gotLines, wantLines := bytes.Split(got, []byte("\n")), bytes.Split(want, []byte("\n"))
		for i := range gotLines {
			if i >= len(wantLines) || !bytes.Equal(gotLines[i], wantLines[i]) {
				t.Fatalf("schedule diverges from golden at line %d:\n got: %s\nwant: %s",
					i+1, gotLines[i], lineAt(wantLines, i))
			}
		}
		t.Fatalf("schedule shorter than golden: %d vs %d lines", len(gotLines), len(wantLines))
	}

	// And regeneration inside one process is stable too.
	if again := renderSchedule(t); !bytes.Equal(got, again) {
		t.Fatal("same seed+spec produced different schedules within one process")
	}
}

func lineAt(lines [][]byte, i int) []byte {
	if i < len(lines) {
		return lines[i]
	}
	return []byte("<missing>")
}
