package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"net/url"
	"time"

	"locater/internal/client"
	"locater/internal/sim"
	"locater/internal/srv"
)

// driver abstracts where the load lands: an in-process srv.Server (the
// hermetic CI mode — no sockets, no ports) or a remote locater-serve over
// HTTP. Both speak the same request/response surface, so one dispatcher and
// one classifier serve both.
type driver interface {
	// do executes one request and returns the HTTP status plus the
	// response body (error bodies only — OK bodies are drained, not kept).
	do(method, path string, body []byte) (int, []byte, error)
	stats() (*srv.StatsResponse, error)
}

// inprocDriver drives a srv.Server directly through ServeHTTP.
type inprocDriver struct{ s *srv.Server }

func (d inprocDriver) do(method, path string, body []byte) (int, []byte, error) {
	var rdr io.Reader
	if body != nil {
		rdr = bytes.NewReader(body)
	}
	rec := httptest.NewRecorder()
	d.s.ServeHTTP(rec, httptest.NewRequest(method, path, rdr))
	if rec.Code >= 200 && rec.Code < 300 {
		return rec.Code, nil, nil
	}
	return rec.Code, rec.Body.Bytes(), nil
}

func (d inprocDriver) stats() (*srv.StatsResponse, error) {
	rec := httptest.NewRecorder()
	d.s.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/v1/stats", nil))
	if rec.Code != http.StatusOK {
		return nil, fmt.Errorf("stats = %d", rec.Code)
	}
	var st srv.StatsResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &st); err != nil {
		return nil, err
	}
	return &st, nil
}

// remoteDriver drives a live locater-serve at base (e.g. http://host:8080)
// through the shared /v1 API client.
type remoteDriver struct{ c *client.Client }

func newRemoteDriver(base string, hardDeadline time.Duration) *remoteDriver {
	// The client timeout backstops the server's own deadline handling: a
	// request the server never answers is cut at 2× the hard deadline and
	// classified as an error.
	return &remoteDriver{c: client.New(base,
		client.WithHTTPClient(&http.Client{Timeout: 2 * hardDeadline}))}
}

func (d *remoteDriver) do(method, path string, body []byte) (int, []byte, error) {
	return d.c.Do(method, path, body)
}

func (d *remoteDriver) stats() (*srv.StatsResponse, error) {
	return d.c.Stats()
}

// buildRequest renders one scheduled op as an HTTP request. Every request
// carries deadline_ms — the harness never issues unbounded work.
func buildRequest(op sim.Op, deadline time.Duration) (method, path string, body []byte, err error) {
	dl := fmt.Sprintf("deadline_ms=%d", deadline.Milliseconds())
	switch op.Kind {
	case sim.OpLocate:
		return http.MethodGet, fmt.Sprintf("/v1/locate?device=%s&time=%s&%s",
			url.QueryEscape(string(op.Query.Device)),
			url.QueryEscape(op.Query.Time.UTC().Format(time.RFC3339)), dl), nil, nil
	case sim.OpBatch:
		req := srv.BatchLocateRequest{
			Queries:        make([]srv.BatchQuery, len(op.Batch)),
			DeadlineMillis: int(deadline.Milliseconds()),
		}
		for i, q := range op.Batch {
			req.Queries[i] = srv.BatchQuery{
				Device: string(q.Device),
				Time:   q.Time.UTC().Format(time.RFC3339),
			}
		}
		b, err := json.Marshal(req)
		return http.MethodPost, "/v1/locate/batch", b, err
	case sim.OpIngest:
		rows := make([]srv.IngestEvent, len(op.Events))
		for i, e := range op.Events {
			rows[i] = srv.IngestEvent{
				Device: string(e.Device),
				Time:   e.Time.UTC().Format(time.RFC3339Nano),
				AP:     string(e.AP),
			}
		}
		b, err := json.Marshal(rows)
		return http.MethodPost, "/v1/ingest?" + dl, b, err
	}
	return "", "", nil, fmt.Errorf("unknown op kind %v", op.Kind)
}

// Outcome kinds for the error taxonomy.
const (
	outOK            = "ok"
	outRejected      = "rejected"
	outDeadline      = "deadline_exceeded"
	outError         = "error"
	outClientDropped = "client_dropped"
)

// outcome classifies one completed request.
type outcome struct {
	kind    string
	code    string // rejection taxonomy subcode for 429s
	latency time.Duration
}

// classify maps a response to the taxonomy. Transport errors (remote mode
// only) arrive as err != nil with status 0.
func classify(status int, body []byte, err error, latency time.Duration) outcome {
	switch {
	case err != nil:
		return outcome{kind: outError, code: "transport", latency: latency}
	case status >= 200 && status < 300:
		return outcome{kind: outOK, latency: latency}
	case status == http.StatusTooManyRequests:
		return outcome{kind: outRejected, code: bodyCode(body), latency: latency}
	case status == http.StatusGatewayTimeout:
		return outcome{kind: outDeadline, latency: latency}
	default:
		return outcome{kind: outError, code: fmt.Sprintf("http_%d", status), latency: latency}
	}
}

func bodyCode(body []byte) string {
	var m struct {
		Code string `json:"code"`
	}
	if json.Unmarshal(body, &m) == nil && m.Code != "" {
		return m.Code
	}
	return "unknown"
}
