// Command locater-gen generates synthetic WiFi connectivity datasets with
// the trajectory simulator: a connectivity log (CSV, the paper's
// ⟨eid, mac, timestamp, wap⟩ schema), the building metadata (JSON), and the
// ground-truth trajectory segments (CSV) for evaluation.
//
// Usage:
//
//	locater-gen -scenario dbh -days 14 -seed 1 -out ./data
//	locater-gen -scenario airport -scale 2 -days 15 -out ./data
//	locater-gen -scenario dbh -days 14 -out ./data -wal ./data/dbh-wal
//
// Scenarios: dbh (the campus-building stand-in), office, university, mall,
// airport (the paper's four simulated environments).
//
// With -wal the connectivity events are additionally emitted straight into
// a durable event-store directory (segmented write-ahead log), ready for
// `locater-serve -data-dir` to recover without a CSV ingest pass.
package main

import (
	"encoding/csv"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"time"

	"locater/internal/event"
	"locater/internal/sim"
	"locater/internal/wal"
)

func main() {
	var (
		scenario = flag.String("scenario", "dbh", "dbh | office | university | mall | airport")
		days     = flag.Int("days", 14, "number of simulated days")
		seed     = flag.Int64("seed", 1, "random seed")
		scale    = flag.Int("scale", 1, "population scale divisor/multiplier per scenario")
		perClass = flag.Int("per-class", 6, "people per predictability class (dbh only)")
		outDir   = flag.String("out", ".", "output directory")
		startStr = flag.String("start", "2026-01-05", "first simulated day (YYYY-MM-DD)")
		walDir   = flag.String("wal", "", "also emit the events into this durable event-store (WAL) directory")
	)
	flag.Parse()

	start, err := time.Parse("2006-01-02", *startStr)
	if err != nil {
		fatalf("bad -start: %v", err)
	}

	var sc sim.Scenario
	switch *scenario {
	case "dbh":
		sc, err = sim.DBH(*perClass)
	case "office":
		sc, err = sim.Office(*scale)
	case "university":
		sc, err = sim.University(*scale)
	case "mall":
		sc, err = sim.Mall(*scale)
	case "airport":
		sc, err = sim.Airport(*scale)
	default:
		fatalf("unknown scenario %q", *scenario)
	}
	if err != nil {
		fatalf("building scenario: %v", err)
	}

	ds, err := sim.Generate(sc.Config(start, *days, *seed))
	if err != nil {
		fatalf("generating: %v", err)
	}

	if err := os.MkdirAll(*outDir, 0o755); err != nil {
		fatalf("creating output dir: %v", err)
	}
	eventsPath := filepath.Join(*outDir, *scenario+"-events.csv")
	buildingPath := filepath.Join(*outDir, *scenario+"-building.json")
	truthPath := filepath.Join(*outDir, *scenario+"-truth.csv")

	if err := writeEvents(eventsPath, ds); err != nil {
		fatalf("writing events: %v", err)
	}
	if err := writeBuilding(buildingPath, ds); err != nil {
		fatalf("writing building: %v", err)
	}
	if err := writeTruth(truthPath, ds); err != nil {
		fatalf("writing truth: %v", err)
	}

	if *walDir != "" {
		if err := writeWAL(*walDir, ds); err != nil {
			fatalf("writing WAL: %v", err)
		}
	}

	fmt.Printf("scenario %s: %d people, %d events over %d days\n",
		*scenario, len(ds.People), len(ds.Events), *days)
	fmt.Printf("  %s\n  %s\n  %s\n", eventsPath, buildingPath, truthPath)
	if *walDir != "" {
		fmt.Printf("  %s (durable event store)\n", *walDir)
	}
}

// writeWAL appends the generated events into a durable event-store
// directory, in batches so the log sees the same group sizes a streaming
// ingester would produce.
func writeWAL(dir string, ds *sim.Dataset) error {
	w, rec, err := wal.Open(dir, wal.Options{})
	if err != nil {
		return err
	}
	if len(rec.Events) > 0 {
		w.Close()
		return fmt.Errorf("directory %s already holds %d events; refusing to mix datasets", dir, len(rec.Events))
	}
	const batch = 4096
	for i := 0; i < len(ds.Events); i += batch {
		end := i + batch
		if end > len(ds.Events) {
			end = len(ds.Events)
		}
		if err := w.AppendEvents(ds.Events[i:end]); err != nil {
			w.Close()
			return err
		}
	}
	if err := w.Commit(); err != nil {
		w.Close()
		return err
	}
	return w.Close()
}

func writeEvents(path string, ds *sim.Dataset) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := event.WriteCSV(f, ds.Events); err != nil {
		return err
	}
	return f.Close()
}

func writeBuilding(path string, ds *sim.Dataset) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := ds.Building.WriteJSON(f); err != nil {
		return err
	}
	return f.Close()
}

// writeTruth emits ground-truth segments: device,start,end,room,outside.
func writeTruth(path string, ds *sim.Dataset) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	w := csv.NewWriter(f)
	if err := w.Write([]string{"device", "start", "end", "room", "outside"}); err != nil {
		return err
	}
	for _, d := range ds.Truth.Devices() {
		for _, s := range ds.Truth.Segments(d) {
			rec := []string{
				string(d),
				s.Start.Format(event.TimeLayout),
				s.End.Format(event.TimeLayout),
				string(s.Room),
				strconv.FormatBool(s.Outside),
			}
			if err := w.Write(rec); err != nil {
				return err
			}
		}
	}
	w.Flush()
	if err := w.Error(); err != nil {
		return err
	}
	return f.Close()
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, format+"\n", args...)
	os.Exit(1)
}
