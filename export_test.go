package locater

import "locater/internal/store"

// StoreForTest exposes the underlying event store so the persistence tests
// can check store-level read-path equivalence (At, Timeline, deltas)
// between a live and a recovered system.
func (s *System) StoreForTest() *store.Store { return s.store }
