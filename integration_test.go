package locater_test

// Cross-module integration tests: they exercise the full pipeline —
// simulator → storage engine → coarse repair → fine disambiguation →
// caching — through the public API, including failure injection (corrupt
// ingest, unknown devices/APs) and consistency between variants.

import (
	"fmt"
	"testing"
	"time"

	"locater"
	"locater/internal/eval"
)

// TestCorruptIngestRejected: malformed events must be rejected atomically
// and leave the system answering queries.
func TestCorruptIngestRejected(t *testing.T) {
	ds := buildDataset(t, 3)
	sys, err := locater.New(locater.Config{Building: ds.Building})
	if err != nil {
		t.Fatal(err)
	}
	bad := [][]locater.Event{
		{{Device: "", Time: simStart, AP: "dbh-wap01"}},
		{{Device: "d", Time: time.Time{}, AP: "dbh-wap01"}},
		{{Device: "d", Time: simStart, AP: ""}},
	}
	for i, evs := range bad {
		if err := sys.Ingest(evs); err == nil {
			t.Errorf("corrupt batch %d accepted", i)
		}
	}
	// The system still works after rejected ingests.
	if err := sys.Ingest(ds.Events[:100]); err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Locate(ds.Events[0].Device, ds.Events[0].Time); err != nil {
		t.Fatal(err)
	}
}

// TestUnknownDeviceIsOutside: querying a device that never produced an
// event must answer outside, not error.
func TestUnknownDeviceIsOutside(t *testing.T) {
	ds := buildDataset(t, 3)
	sys := newSystem(t, ds, locater.Config{})
	res, err := sys.Locate("never-seen", simStart.AddDate(0, 0, 2).Add(12*time.Hour))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Outside {
		t.Errorf("unknown device answered %+v", res)
	}
}

// TestEventOnUnknownAPSurfacesError: an ingested event naming an AP absent
// from the building metadata must fail the query that touches it with a
// descriptive error (not a panic or silent wrong answer).
func TestEventOnUnknownAPSurfacesError(t *testing.T) {
	ds := buildDataset(t, 3)
	sys := newSystem(t, ds, locater.Config{})
	rogue := locater.Event{Device: "rogue", Time: simStart.AddDate(0, 0, 1).Add(10 * time.Hour), AP: "not-an-ap"}
	if err := sys.IngestOne(rogue); err != nil {
		t.Fatal(err) // store accepts it: metadata validation happens at query time
	}
	if _, err := sys.Locate("rogue", rogue.Time); err == nil {
		t.Error("query over unknown AP should error")
	}
}

// TestVariantsConsistency: across a workload, the two variants must agree
// on every coarse answer (they share the coarse stage) and may differ only
// in rooms.
func TestVariantsConsistency(t *testing.T) {
	ds := buildDataset(t, 10)
	iSys := newSystem(t, ds, locater.Config{Variant: locater.IndependentVariant})
	dSys := newSystem(t, ds, locater.Config{Variant: locater.DependentVariant})

	queries, err := eval.SampleQueries(ds, eval.WorkloadOptions{
		NumQueries: 40, Seed: 21,
		From: simStart.AddDate(0, 0, 7), To: simStart.AddDate(0, 0, 10),
		DaytimeOnly: true, InsideBias: 0.5,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, q := range queries {
		ri, err := iSys.Locate(q.Device, q.Time)
		if err != nil {
			t.Fatal(err)
		}
		rd, err := dSys.Locate(q.Device, q.Time)
		if err != nil {
			t.Fatal(err)
		}
		if ri.Outside != rd.Outside {
			t.Fatalf("variants disagree on inside/outside for (%s, %v)", q.Device, q.Time)
		}
		if !ri.Outside && ri.Region != rd.Region {
			t.Fatalf("variants disagree on region for (%s, %v): %s vs %s",
				q.Device, q.Time, ri.Region, rd.Region)
		}
	}
}

// TestDeterministicAnswers: two identically-configured systems over the same
// ingest must answer every query identically (no hidden nondeterminism).
func TestDeterministicAnswers(t *testing.T) {
	ds := buildDataset(t, 7)
	a := newSystem(t, ds, locater.Config{Variant: locater.DependentVariant})
	b := newSystem(t, ds, locater.Config{Variant: locater.DependentVariant})

	queries, err := eval.SampleQueries(ds, eval.WorkloadOptions{
		NumQueries: 30, Seed: 33,
		From: simStart.AddDate(0, 0, 5), To: simStart.AddDate(0, 0, 7),
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, q := range queries {
		ra, err := a.Locate(q.Device, q.Time)
		if err != nil {
			t.Fatal(err)
		}
		rb, err := b.Locate(q.Device, q.Time)
		if err != nil {
			t.Fatal(err)
		}
		if ra.Outside != rb.Outside || ra.Region != rb.Region || ra.Room != rb.Room {
			t.Fatalf("nondeterministic answer for (%s, %v): %+v vs %+v", q.Device, q.Time, ra, rb)
		}
	}
}

// TestBatchVsStreamingEquivalence: ingesting the same events in one batch or
// one at a time must produce identical answers.
func TestBatchVsStreamingEquivalence(t *testing.T) {
	ds := buildDataset(t, 5)
	cfg := locater.Config{Building: ds.Building, HistoryDays: 5, PromotionsPerRound: 8}

	batch, err := locater.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := batch.Ingest(ds.Events); err != nil {
		t.Fatal(err)
	}
	stream, err := locater.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range ds.Events {
		if err := stream.IngestOne(e); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 10; i++ {
		dev := ds.People[i%len(ds.People)].Device
		tq := simStart.AddDate(0, 0, 4).Add(time.Duration(9+i) * time.Hour)
		ra, err := batch.Locate(dev, tq)
		if err != nil {
			t.Fatal(err)
		}
		rb, err := stream.Locate(dev, tq)
		if err != nil {
			t.Fatal(err)
		}
		if ra.Outside != rb.Outside || ra.Region != rb.Region || ra.Room != rb.Room {
			t.Fatalf("batch/stream divergence for (%s, %v): %+v vs %+v", dev, tq, ra, rb)
		}
	}
}

// TestOfficematesShareBaseRoom: the DBH scenario pairs officemates
// (OfficeShare=2); the co-location structure group affinity relies on must
// actually exist in the generated population.
func TestOfficematesShareBaseRoom(t *testing.T) {
	ds := buildDataset(t, 2)
	byRoom := map[locater.RoomID][]locater.DeviceID{}
	for _, p := range ds.People {
		byRoom[p.BaseRoom] = append(byRoom[p.BaseRoom], p.Device)
	}
	shared := 0
	for _, devs := range byRoom {
		if len(devs) >= 2 {
			shared++
		}
	}
	if shared == 0 {
		t.Error("no shared offices in DBH population — group-affinity signal missing")
	}
}

// TestQueriesUnderConcurrentIngest: queries must stay correct while events
// stream in from another goroutine (the online deployment pattern).
func TestQueriesUnderConcurrentIngest(t *testing.T) {
	ds := buildDataset(t, 5)
	sys := newSystem(t, ds, locater.Config{EnableCache: true})

	extra := make([]locater.Event, 200)
	ap := ds.Building.AccessPoints()[0]
	for i := range extra {
		extra[i] = locater.Event{
			Device: locater.DeviceID(fmt.Sprintf("cc%02d", i%4)),
			Time:   simStart.AddDate(0, 0, 4).Add(time.Duration(i) * time.Minute),
			AP:     ap,
		}
	}
	done := make(chan error, 1)
	go func() {
		for _, e := range extra {
			if err := sys.IngestOne(e); err != nil {
				done <- err
				return
			}
		}
		done <- nil
	}()
	for i := 0; i < 30; i++ {
		dev := ds.People[i%len(ds.People)].Device
		tq := simStart.AddDate(0, 0, 3).Add(time.Duration(8+i%10) * time.Hour)
		if _, err := sys.Locate(dev, tq); err != nil {
			t.Fatalf("query during ingest: %v", err)
		}
	}
	if err := <-done; err != nil {
		t.Fatalf("concurrent ingest: %v", err)
	}
}
