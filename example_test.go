// Executable godoc examples for the top-level API: assembling a system,
// answering a single query, and fanning a batch of queries across the
// concurrent engine. The examples use a hand-built three-room building so
// the outputs are exactly reproducible.
package locater_test

import (
	"fmt"
	"log"
	"time"

	"locater"
	"locater/internal/space"
)

// exampleBuilding is a minimal space model: one access point ("ap-1",
// therefore one region) covering a private office 101, a public lounge
// 102, and another private office 103. Device aa:bb:cc:01 prefers room 101
// (their office).
func exampleBuilding() *space.Building {
	b, err := space.NewBuilding(space.Config{
		Name: "demo",
		Rooms: []space.Room{
			{ID: "101", Kind: space.Private},
			{ID: "102", Kind: space.Public},
			{ID: "103", Kind: space.Private},
		},
		AccessPoints: []space.AccessPoint{
			{ID: "ap-1", Coverage: []space.RoomID{"101", "102", "103"}},
		},
		PreferredRooms: map[string][]space.RoomID{
			"aa:bb:cc:01": {"101"},
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	return b
}

// exampleEvents is a tiny connectivity log for device aa:bb:cc:01: two
// associations to ap-1 25 minutes apart, leaving a short gap between their
// validity intervals (δ defaults to 10 minutes, so the gap is 9:10–9:15).
func exampleEvents(day time.Time) []locater.Event {
	return []locater.Event{
		{Device: "aa:bb:cc:01", Time: day.Add(9 * time.Hour), AP: "ap-1"},
		{Device: "aa:bb:cc:01", Time: day.Add(9*time.Hour + 25*time.Minute), AP: "ap-1"},
	}
}

func ExampleNew() {
	sys, err := locater.New(locater.Config{
		Building: exampleBuilding(),
		Variant:  locater.DependentVariant,
		// EnableCache turns on the affinity-graph caching engine
		// (Section 5); all other zero fields select the paper's defaults.
		EnableCache: true,
	})
	if err != nil {
		log.Fatal(err)
	}
	day := time.Date(2026, 3, 2, 0, 0, 0, 0, time.UTC)
	if err := sys.Ingest(exampleEvents(day)); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("building=%s events=%d devices=%d\n",
		sys.Building().Name(), sys.NumEvents(), sys.NumDevices())
	// Output:
	// building=demo events=2 devices=1
}

func ExampleSystem_Locate() {
	sys, err := locater.New(locater.Config{Building: exampleBuilding()})
	if err != nil {
		log.Fatal(err)
	}
	day := time.Date(2026, 3, 2, 0, 0, 0, 0, time.UTC)
	if err := sys.Ingest(exampleEvents(day)); err != nil {
		log.Fatal(err)
	}

	// 9:02 falls inside the first event's validity interval: no cleaning
	// needed, and the fine stage picks the device's preferred office.
	res, err := sys.Locate("aa:bb:cc:01", day.Add(9*time.Hour+2*time.Minute))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("room=%s region=%s p=%.2f repaired=%v\n",
		res.Room, res.Region, res.RoomProbability, res.Repaired)

	// 9:12 falls in the gap between the two events: a missing value the
	// coarse stage repairs (the short gap bootstraps to "inside").
	res, err = sys.Locate("aa:bb:cc:01", day.Add(9*time.Hour+12*time.Minute))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("room=%s region=%s p=%.2f repaired=%v\n",
		res.Room, res.Region, res.RoomProbability, res.Repaired)
	// Output:
	// room=101 region=ap-1 p=0.60 repaired=false
	// room=101 region=ap-1 p=0.60 repaired=true
}

func ExampleSystem_LocateBatch() {
	sys, err := locater.New(locater.Config{Building: exampleBuilding()})
	if err != nil {
		log.Fatal(err)
	}
	day := time.Date(2026, 3, 2, 0, 0, 0, 0, time.UTC)
	if err := sys.Ingest(exampleEvents(day)); err != nil {
		log.Fatal(err)
	}

	// Three queries answered concurrently on a bounded worker pool;
	// results come back in input order with per-query errors.
	results := sys.LocateBatch([]locater.Query{
		{Device: "aa:bb:cc:01", Time: day.Add(9*time.Hour + 2*time.Minute)},
		{Device: "aa:bb:cc:01", Time: day.Add(9*time.Hour + 12*time.Minute)},
		{Device: "ff:ff:ff:99", Time: day.Add(9 * time.Hour)}, // never seen
	}, 2)
	for i, r := range results {
		if r.Err != nil {
			fmt.Printf("%d: error %v\n", i, r.Err)
			continue
		}
		if r.Result.Outside {
			fmt.Printf("%d: %s outside\n", i, r.Query.Device)
			continue
		}
		fmt.Printf("%d: %s in room %s\n", i, r.Query.Device, r.Result.Room)
	}
	// Output:
	// 0: aa:bb:cc:01 in room 101
	// 1: aa:bb:cc:01 in room 101
	// 2: ff:ff:ff:99 outside
}
