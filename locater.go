// Package locater is a reproduction of "LOCATER: Cleaning WiFi Connectivity
// Datasets for Semantic Localization" (Lin et al., VLDB 2020): an online
// cleaning system that answers room-level localization queries over raw WiFi
// association logs.
//
// LOCATER poses semantic indoor localization as two data-cleaning problems.
// Coarse-grained localization treats the periods between a device's sporadic
// connectivity events ("gaps") as missing values: a bootstrapped,
// semi-supervised classifier decides whether the device was inside or
// outside the building during the gap and, when inside, which access-point
// coverage region it was in. Fine-grained localization disambiguates the
// specific room among the region's candidates using room affinities derived
// from space metadata and group affinities derived from historical device
// co-location, processed by an iterative algorithm with probabilistic early
// termination. A caching engine (the global affinity graph) accumulates
// affinity knowledge across queries to reach near-real-time responses.
//
// Basic usage:
//
//	sys, err := locater.New(locater.Config{Building: b})
//	...
//	sys.Ingest(events)
//	res, err := sys.Locate("7f:bh:..", queryTime)
//	if res.Outside { ... } else { fmt.Println(res.Region, res.Room) }
package locater

import (
	"context"
	"errors"
	"fmt"
	"math"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"locater/internal/affgraph"
	"locater/internal/cache"
	"locater/internal/cleanse"
	"locater/internal/coarse"
	"locater/internal/event"
	"locater/internal/fine"
	"locater/internal/space"
	"locater/internal/store"
	"locater/internal/wal"
)

// Re-exported identifier types, so callers need not import internal
// packages.
type (
	// DeviceID is a device MAC address.
	DeviceID = event.DeviceID
	// RoomID identifies a room.
	RoomID = space.RoomID
	// RegionID identifies an AP coverage region.
	RegionID = space.RegionID
	// APID identifies an access point.
	APID = space.APID
	// Event is one WiFi association record ⟨mac, time, wap⟩.
	Event = event.Event
	// Building is the space metadata model.
	Building = space.Building
	// Weights are the room-affinity weights (w^pf, w^pb, w^pr).
	Weights = fine.Weights
	// TimePreference scopes preferred rooms to a daily time window
	// (Section 4.1's time-dependent preferred-room extension).
	TimePreference = space.TimePreference
)

// Variant selects the fine-grained inference model.
type Variant = fine.Variant

const (
	// IndependentVariant is I-LOCATER: neighbors treated independently
	// (Eq. 3 posterior with the Theorem 1–3 stop bounds).
	IndependentVariant = fine.Independent
	// DependentVariant is D-LOCATER: neighbors grouped in affinity
	// clusters (Eq. 6 posterior; slightly more precise, slower).
	DependentVariant = fine.Dependent
)

// DefaultWeights returns the paper's best weight combination C2 =
// {0.6, 0.3, 0.1} (Table 2).
func DefaultWeights() Weights { return fine.DefaultWeights() }

// ErrDeadlineExceeded reports that a query's context deadline expired before
// the answer was computed. It is distinct from every other query error so
// callers (the HTTP layer, the batch driver, load harnesses) can classify
// timed-out work separately from genuine failures.
var ErrDeadlineExceeded = errors.New("locater: query deadline exceeded")

// Config configures a LOCATER system. The zero value of every optional
// field selects the paper's defaults.
type Config struct {
	// Building is the space metadata (required).
	Building *space.Building

	// DefaultDelta is the fallback validity interval δ per event.
	// Default 10 minutes.
	DefaultDelta time.Duration

	// Variant selects I-LOCATER or D-LOCATER. Default independent.
	Variant Variant
	// Weights are the room-affinity weights; DefaultWeights when zero.
	Weights Weights
	// DisableStopConditions turns off Algorithm 2's loose early
	// termination (the Fig. 11 ablation). Default off (conditions used).
	DisableStopConditions bool
	// HistoryDays is the coarse stage's training window N in days.
	// Default 56 (8 weeks).
	HistoryDays int
	// TauLow/TauHigh are the inside/outside bootstrap thresholds
	// (defaults 20 and 180 minutes; Fig. 7). RegionTauLow/RegionTauHigh
	// are the region-level analogues (defaults 20 and 40 minutes).
	TauLow, TauHigh             time.Duration
	RegionTauLow, RegionTauHigh time.Duration
	// PromotionsPerRound is how many unlabeled gaps each self-training
	// round promotes; 1 reproduces Algorithm 1 exactly. Default 1.
	PromotionsPerRound int
	// MaxTrainingGaps caps the gaps used to train per-device models
	// (most recent kept; 0 = unlimited).
	MaxTrainingGaps int

	// HistoryWindow bounds the history scanned for device affinities.
	// Default 8 weeks.
	HistoryWindow time.Duration
	// MaxNeighbors caps Algorithm 2's neighbor set (0 = unlimited).
	MaxNeighbors int

	// EnableCache turns on the caching engine: the global affinity graph,
	// the bounded pairwise-affinity fallback cache, and the query result
	// cache. All three are invalidation-correct — every write (Ingest,
	// SetDelta, EstimateDeltas, AddRoomLabel, …) is visible to the very
	// next query.
	EnableCache bool
	// CacheSigma is the Gaussian kernel width for collapsing timestamped
	// affinity observations. Default 1 hour.
	CacheSigma time.Duration
	// AffinityCacheSize bounds the pairwise-affinity fallback cache in
	// entries (one per device pair per time bucket). Default 65536.
	AffinityCacheSize int
	// ResultCacheSize bounds the query result cache in entries (one per
	// device per ResultCacheBucket). Default 16384; -1 disables result
	// caching while keeping the affinity graph.
	ResultCacheSize int
	// ResultCacheBucket quantizes query times for the result cache: two
	// queries for the same device whose times fall in the same bucket
	// share one cached answer (unless a write intervened). Default 1
	// minute — below the paper's 10-minute default δ, so bucketing cannot
	// blur a validity-interval boundary by more than a minute.
	ResultCacheBucket time.Duration
	// ModelCacheSize bounds the coarse stage's per-device model cache.
	// Default 4096. Effective with or without EnableCache.
	ModelCacheSize int

	// DefaultQueryDeadline bounds every Locate/LocateBatch call whose
	// context carries no deadline of its own. Zero (the default) leaves
	// such calls unbounded. Calls that exceed the deadline fail with
	// ErrDeadlineExceeded, checked at the stage boundaries of the query
	// pipeline.
	DefaultQueryDeadline time.Duration

	// OccupancyBucket is the bucket width of the store's temporal occupancy
	// index, which serves fine-grained neighbor discovery in time
	// proportional to the devices actually active around the query instead
	// of a scan over every device log. Default 10 minutes. Effective with
	// or without EnableCache.
	OccupancyBucket time.Duration
	// DisableOccupancyIndex turns the occupancy index off; neighbor
	// discovery falls back to the full-scan path. The index is derived
	// state (rebuilt from the logs, never persisted), so the knob only
	// trades lookup cost against index memory.
	DisableOccupancyIndex bool

	// SegmentMaxEvents is the head size at which a device's mutable event
	// log is sealed into an immutable compressed segment (dictionary-encoded
	// APs, delta-of-delta timestamps). 0 selects the default (512); a
	// negative value disables sealing, keeping every log a plain slice.
	SegmentMaxEvents int
	// SegmentBlockEvents is the intra-segment block size: sealed payloads
	// are encoded as consecutive independently-decodable blocks of this
	// many events plus a block index (min/max timestamp per block), so a
	// point lookup decodes 1–2 blocks instead of the whole segment. 0
	// selects the default (64); a negative value reverts to whole-segment
	// encoding (one block per segment, no index) — the pre-block baseline.
	SegmentBlockEvents int
	// SegmentCacheSize bounds the decoded-block cache in blocks. 0 selects
	// the default (1024 segments' worth of blocks). Sealed payloads are
	// paged back in block-at-a-time through this cache, so the bound caps
	// the decoded warm working set.
	SegmentCacheSize int
	// ColdTierDir spills sealed segments to per-device files under this
	// directory instead of holding the compressed payloads in memory. On
	// systems built with Open it defaults to "<dir>/segments"; with New it
	// defaults to the in-memory compressed tier.
	ColdTierDir string
	// ColdTierMmap memory-maps the cold tier's segment files so block
	// decodes read borrowed mapped bytes instead of copying through read
	// syscalls, and residency is owned by the OS page cache rather than the
	// Go heap. Effective only with ColdTierDir set, on platforms with mmap
	// support (elsewhere the portable read-at path is used transparently).
	ColdTierMmap bool

	// EnableCleansing turns on the ingest-time cleansing stage: oscillating
	// AP re-associations are deduplicated, physically impossible transitions
	// dropped, and degenerate devices flagged BEFORE events reach the store
	// (and, on durable systems, before they reach the write-ahead log, so
	// replay never re-cleanses). Rejected events land in a bounded
	// quarantine ring inspectable via Quarantine / GET /v1/quarantine.
	// Default off: with cleansing disabled the pipeline's answers are
	// byte-identical to raw ingestion.
	EnableCleansing bool
	// CleanseReassocWindow / CleanseFlapWindow / CleanseMinTransit /
	// CleanseDegenerateEventsPerMinute tune the cleansing rules (see
	// internal/cleanse.Config; zero values select the defaults of 10s, 30s,
	// 1s, and 120 events/min).
	CleanseReassocWindow             time.Duration
	CleanseFlapWindow                time.Duration
	CleanseMinTransit                time.Duration
	CleanseDegenerateEventsPerMinute int
	// QuarantineCap bounds the quarantine ring in entries. Default 1024.
	QuarantineCap int

	// StatsHalfLife is the event-time half-life of the coarse stage's
	// decayed gap sufficient statistics. Default 7 days.
	StatsHalfLife time.Duration
	// RecomputeOnWrite reverts the write path to full recompute-on-miss
	// invalidation: every ingested batch invalidates the touched devices'
	// coarse state entirely and epoch-bumps the whole pairwise-affinity
	// cache, instead of maintaining models incrementally with scoped
	// validation. It exists as the baseline arm of `locater-bench -incr`
	// and as an operational escape hatch; leave it off.
	RecomputeOnWrite bool
}

func (c Config) coarseOptions() coarse.Options {
	th := coarse.DefaultThresholds()
	if c.TauLow > 0 {
		th.TauLow = c.TauLow
	}
	if c.TauHigh > 0 {
		th.TauHigh = c.TauHigh
	}
	if c.RegionTauLow > 0 {
		th.RegionTauLow = c.RegionTauLow
	}
	if c.RegionTauHigh > 0 {
		th.RegionTauHigh = c.RegionTauHigh
	}
	return coarse.Options{
		Thresholds:            th,
		HistoryDays:           c.HistoryDays,
		MaxPromotionsPerRound: c.PromotionsPerRound,
		MaxTrainingGaps:       c.MaxTrainingGaps,
		ModelCacheCapacity:    c.ModelCacheSize,
		StatsHalfLife:         c.StatsHalfLife,
	}
}

func (c Config) cleanseConfig() cleanse.Config {
	return cleanse.Config{
		ReassocWindow:             c.CleanseReassocWindow,
		FlapWindow:                c.CleanseFlapWindow,
		MinTransit:                c.CleanseMinTransit,
		DegenerateEventsPerMinute: c.CleanseDegenerateEventsPerMinute,
		QuarantineCap:             c.QuarantineCap,
	}
}

func (c Config) fineOptions() fine.Options {
	return fine.Options{
		Weights:           c.Weights,
		Variant:           c.Variant,
		UseStopConditions: !c.DisableStopConditions,
		HistoryWindow:     c.HistoryWindow,
		MaxNeighbors:      c.MaxNeighbors,
	}
}

// defaultResultCacheSize bounds the query result cache when
// Config.ResultCacheSize is zero.
const defaultResultCacheSize = 16384

// resultKey identifies one memoized Locate answer: a device plus the query
// time quantized to Config.ResultCacheBucket.
type resultKey struct {
	device DeviceID
	bucket int64
}

// hashResultKey mixes the device ID and the time bucket (FNV-1a).
func hashResultKey(k resultKey) uint64 {
	const prime64 = 1099511628211
	h := cache.StringHash(k.device)
	for i := 0; i < 8; i++ {
		h ^= uint64(byte(k.bucket >> (8 * i)))
		h *= prime64
	}
	return h
}

// Result is a localization answer at all granularities.
type Result struct {
	// Outside reports the device outside the building at the query time.
	Outside bool
	// Region is the coarse answer when inside.
	Region RegionID
	// Room is the fine answer when inside.
	Room RoomID
	// RoomProbability is the posterior of the chosen room.
	RoomProbability float64
	// CoarseConfidence is the confidence of the coarse stage.
	CoarseConfidence float64
	// Repaired is true when the query time fell in a gap (a missing value
	// was repaired); false when an actual connectivity event covered it.
	Repaired bool
	// ProcessedNeighbors / TotalNeighbors report Algorithm 2's work.
	ProcessedNeighbors int
	TotalNeighbors     int
}

// System is the LOCATER engine: storage + cleaning + caching. It is safe
// for concurrent use and scales across cores: there is no system-wide lock.
// Each component synchronizes independently —
//
//   - the store takes a shared lock for reads, an exclusive one for ingest;
//   - the coarse stage's per-device model cache is sharded by a hash of the
//     device ID, so training, queries, and ingest-triggered invalidation
//     for unrelated devices never contend on a common lock;
//   - the label store and the caching engine (global affinity graph +
//     affinity cache) use read/write locks of their own;
//   - the query counter is atomic.
//
// Concurrent Locate calls for different devices therefore run in parallel,
// and Ingest interleaves with queries without stopping the world. The
// remaining cross-query contention points are the store's shared lock,
// same-shard model training, and — with EnableCache — the affinity graph's
// write lock, which every query that produced local edges takes briefly to
// merge them. See ARCHITECTURE.md for the full concurrency model.
type System struct {
	cfg      Config
	building *space.Building
	store    *store.Store
	coarse   *coarse.Localizer
	fine     *fine.Localizer
	graph    *affgraph.Graph
	cached   *affgraph.CachedAffinity
	labels   *fine.LabelStore

	// cleanser is the ingest-time cleansing stage; nil when
	// Config.EnableCleansing is off.
	cleanser *cleanse.Cleanser

	// results memoizes whole Locate answers by (device, bucketed time);
	// nil when caching is off. Every write path bumps its epoch (see
	// invalidateQueryCaches), so a cached answer can never outlive the
	// history it was computed from.
	results      *cache.Cache[resultKey, Result]
	resultBucket time.Duration

	// Durable-mode state (nil/zero for systems built with New). persistMu
	// coordinates appenders with Checkpoint: every mutation that reaches
	// the write-ahead log holds it shared, a checkpoint holds it exclusive
	// while capturing state, so the captured state and captured log
	// position always agree. Queries never touch it.
	wal       *wal.WAL
	persistMu sync.RWMutex
	snapStop  chan struct{}
	snapDone  chan struct{}

	queries atomic.Int64
	// metrics records cold/cached latency histograms and the
	// neighbors-processed distribution (see QueryStats).
	metrics queryMetrics
}

// New validates the configuration and assembles a system.
func New(cfg Config) (*System, error) {
	if cfg.Building == nil {
		return nil, fmt.Errorf("locater: Config.Building is required")
	}
	if (cfg.Weights != fine.Weights{}) {
		if err := cfg.Weights.Validate(); err != nil {
			return nil, err
		}
	}
	st := store.New(cfg.DefaultDelta)
	segCfg := store.SegmentConfig{
		MaxEvents:   cfg.SegmentMaxEvents,
		BlockEvents: cfg.SegmentBlockEvents,
		CacheSize:   cfg.SegmentCacheSize,
	}
	if cfg.ColdTierDir != "" {
		open := store.NewDiskSegmentBackend
		if cfg.ColdTierMmap {
			open = store.NewMmapSegmentBackend
		}
		backend, err := open(cfg.ColdTierDir)
		if err != nil {
			return nil, fmt.Errorf("locater: opening cold tier: %w", err)
		}
		segCfg.Backend = backend
	}
	if err := st.ConfigureSegments(segCfg); err != nil {
		return nil, err
	}
	if cfg.DisableOccupancyIndex || cfg.OccupancyBucket > 0 {
		st.ConfigureOccupancy(cfg.OccupancyBucket, !cfg.DisableOccupancyIndex)
	}
	s := &System{
		cfg:      cfg,
		building: cfg.Building,
		store:    st,
	}
	s.coarse = coarse.New(cfg.Building, st, cfg.coarseOptions())
	if cfg.EnableCleansing {
		s.cleanser = cleanse.New(cfg.Building, cfg.cleanseConfig())
		// After recovery the cleanser's per-device state is empty (the WAL
		// holds only cleansed events, so replay skips the stage); seed each
		// device's rule state lazily from its newest stored event.
		s.cleanser.SetSeed(func(d event.DeviceID) (event.Event, bool) {
			return st.LastEventAtOrBefore(d, time.Unix(0, math.MaxInt64))
		})
	}

	fineOpts := cfg.fineOptions()
	var provider fine.PairAffinityProvider
	var orderer fine.NeighborOrderer
	if cfg.EnableCache {
		s.graph = affgraph.New(affgraph.Options{Sigma: cfg.CacheSigma})
		window := fineOpts.HistoryWindow
		if window <= 0 {
			window = 8 * 7 * 24 * time.Hour
		}
		base := fine.NewStoreAffinity(st, window)
		s.cached = affgraph.NewCachedAffinity(s.graph, base, time.Hour, cfg.AffinityCacheSize)
		provider = s.cached
		orderer = s.graph
		if cfg.ResultCacheSize >= 0 {
			size := cfg.ResultCacheSize
			if size == 0 {
				size = defaultResultCacheSize
			}
			s.resultBucket = cfg.ResultCacheBucket
			if s.resultBucket <= 0 {
				s.resultBucket = time.Minute
			}
			s.results = cache.New[resultKey, Result](size, hashResultKey)
		}
	}
	s.fine = fine.New(cfg.Building, st, provider, orderer, fineOpts)
	// The label store is attached up front (an empty store is a no-op for
	// the prior) so AddRoomLabel never has to swap the fine stage's
	// pointer while concurrent queries read it.
	s.labels = fine.NewLabelStore(0)
	s.fine.SetLabelStore(s.labels)
	// Fine localization resolves neighbor regions through the coarse
	// stage when the neighbor is itself inside a gap.
	s.fine.SetCoarseResolver(func(d event.DeviceID, tq time.Time) (space.RegionID, bool) {
		res, err := s.coarse.Locate(d, tq)
		if err != nil || res.Outside {
			return "", false
		}
		return res.Region, true
	})
	return s, nil
}

// invalidateQueryCaches epoch-bumps the caches whose entries derive from
// mutable history: cached pairwise affinities and memoized query results.
// Called after every write path, so a post-write query always recomputes
// from post-write state — the cached layers can never answer from stale
// history (the pre-fix bug: ingest only invalidated coarse models, and
// cached affinities kept answering from pre-ingest co-locations forever).
// The affinity graph itself is not cleared: its edges are query-derived
// knowledge the paper's caching engine accumulates on purpose.
func (s *System) invalidateQueryCaches() {
	if s.cached != nil {
		s.cached.Invalidate()
	}
	s.invalidateResultCache()
}

// invalidateResultCache epoch-bumps only the memoized query results: for
// writes that change answers without touching affinity inputs (labels,
// preferred rooms), dropping the expensive pairwise-affinity cache too
// would force needless store scans.
func (s *System) invalidateResultCache() {
	if s.results != nil {
		s.results.Invalidate()
	}
}

// Ingest adds a batch of connectivity events. With EnableCleansing the
// batch passes the cleansing stage first, so the store — and, on durable
// systems, the write-ahead log — only ever hold cleansed events.
//
// After the store applies the batch, the model layer is maintained
// INCREMENTALLY: the touched devices' gap sufficient statistics are updated
// in place, the affinity tier records the write in its per-device log
// (scoped validation then keeps every cached affinity a recent-events write
// provably cannot change), and only the memoized query results — whose
// entries future events can always change — are epoch-bumped. With
// Config.RecomputeOnWrite the legacy path runs instead: full per-device
// coarse invalidation plus a whole-cache affinity epoch bump. Safe to call
// while queries are in flight. On a system built with Open the batch is
// written ahead to the log and Ingest returns only once it is durable.
func (s *System) Ingest(events []Event) error {
	if s.cleanser != nil {
		events = s.cleanser.Clean(events)
		if len(events) == 0 {
			return nil
		}
	}
	s.persistMu.RLock()
	_, err := s.store.Ingest(events)
	s.persistMu.RUnlock()
	s.observeWrite(events, err)
	return err
}

// IngestOne adds one event (streaming ingestion). Cleansing and model
// maintenance match Ingest.
func (s *System) IngestOne(e Event) error {
	events := []Event{e}
	if s.cleanser != nil {
		events = s.cleanser.Clean(events)
		if len(events) == 0 {
			return nil
		}
	}
	s.persistMu.RLock()
	err := s.store.IngestOne(events[0])
	s.persistMu.RUnlock()
	s.observeWrite(events, err)
	return err
}

// observeWrite runs post-store model maintenance for an ingested batch.
// On a store error the batch may be partially applied (a durability
// Commit-stage failure has already mutated the in-memory store), so the
// conservative legacy invalidation runs regardless of mode — stale caches
// must not outlive the partial write.
func (s *System) observeWrite(events []Event, err error) {
	if err != nil || s.cfg.RecomputeOnWrite {
		seen := make(map[DeviceID]struct{}, 8)
		for _, e := range events {
			if _, ok := seen[e.Device]; ok {
				continue
			}
			seen[e.Device] = struct{}{}
			s.coarse.InvalidateDevice(e.Device)
		}
		s.invalidateQueryCaches()
		return
	}
	s.coarse.ObserveIngest(events)
	if s.cached != nil {
		s.cached.ObserveIngest(events)
	}
	// Memoized whole-query answers can never survive a write: a future
	// event can close an open gap and change any neighbor's evidence.
	s.invalidateResultCache()
}

// SetDelta registers a device-specific validity interval δ(d). The device's
// coarse state is invalidated (its gap structure just changed — the
// incremental statistics cannot express a δ change, so this is the rebuild
// escape hatch), and the affinity tier drops the device's cached pairs
// (scoped, unless RecomputeOnWrite forces the global epoch bump).
func (s *System) SetDelta(d DeviceID, delta time.Duration) error {
	s.persistMu.RLock()
	err := s.store.SetDelta(d, delta)
	s.persistMu.RUnlock()
	// Invalidate even on error, as in Ingest: a durability (Commit-stage)
	// failure has already applied the new δ to the in-memory store, and
	// caches built under the old δ must not outlive it.
	s.coarse.InvalidateDevice(d)
	if s.cfg.RecomputeOnWrite || s.cached == nil {
		s.invalidateQueryCaches()
		return err
	}
	s.cached.InvalidateDevice(d)
	s.invalidateResultCache()
	return err
}

// EstimateDeltas derives δ(d) for every ingested device from its own log
// (Appendix 9.1), clamped to [min, max], at the given quantile of same-AP
// inter-event spacings. The returned error is always nil on systems built
// with New; on a durable system it reports a failure to log the estimated
// deltas.
func (s *System) EstimateDeltas(quantile float64, min, max time.Duration) error {
	s.persistMu.RLock()
	err := s.store.EstimateDeltas(quantile, min, max)
	s.persistMu.RUnlock()
	// Invalidate even on error, as in Ingest and SetDelta: a logging or
	// durability failure can leave some (or all) of the estimated δs
	// applied to the in-memory store, and caches built under the old δs
	// must not outlive them.
	s.coarse.InvalidateAll()
	s.invalidateQueryCaches()
	return err
}

// AddRoomLabel records a crowd-sourced room-level observation — device d was
// known to be in room r at time t (e.g. from a calendar, badge reader, or
// user report). Labels sharpen the device's room-affinity prior, the
// extension sketched in the paper's footnote 7.
func (s *System) AddRoomLabel(d DeviceID, r RoomID, t time.Time) error {
	// Validate up front — an invalid label must neither reach the
	// write-ahead log (replay re-applies without validation) nor the
	// in-memory store.
	if d == "" {
		return fmt.Errorf("locater: label with empty device")
	}
	if _, ok := s.building.Room(r); !ok {
		return fmt.Errorf("locater: label references unknown room %s", r)
	}
	s.persistMu.RLock()
	defer s.persistMu.RUnlock()
	// Same write-ahead order as ingest: log first (a failed append applies
	// nothing, so a retry cannot double-count), then apply, then wait for
	// durability.
	if s.wal != nil {
		if err := s.wal.AppendLabel(d, r, t); err != nil {
			return fmt.Errorf("locater: logging label: %w", err)
		}
	}
	if err := s.labels.Add(d, r, t); err != nil {
		return err
	}
	// Labels sharpen the fine stage's room prior, so memoized results are
	// stale the moment the label lands; affinities are unaffected.
	s.invalidateResultCache()
	if s.wal != nil {
		if err := s.wal.Commit(); err != nil {
			return fmt.Errorf("locater: committing label: %w", err)
		}
	}
	return nil
}

// SetTimePreferredRooms registers time-of-day-scoped preferred rooms for a
// device (e.g. the break room over lunch, the office otherwise). See
// space.TimePreference.
func (s *System) SetTimePreferredRooms(d DeviceID, prefs []TimePreference) error {
	if err := s.building.SetTimePreferredRooms(string(d), prefs); err != nil {
		return err
	}
	// Preferred rooms shift the fine stage's room prior: memoized results
	// must not survive the change; affinities are unaffected.
	s.invalidateResultCache()
	return nil
}

// Locate answers the query Q = (device, t): the paper's end-to-end flow.
// The coarse stage classifies the query point (validity hit, or gap repair);
// if the device is inside, the fine stage disambiguates the room. Locate is
// safe to call from many goroutines; queries for unrelated devices run in
// parallel (see LocateBatch for a pooled fan-out).
//
// With EnableCache, whole answers are memoized by (device, time bucket):
// a repeat query skips both stages entirely. The memo is epoch-based —
// every write path invalidates it — so a query issued right after an Ingest
// is recomputed from the post-ingest history, never served stale.
func (s *System) Locate(d DeviceID, t time.Time) (Result, error) {
	return s.LocateContext(context.Background(), d, t)
}

// LocateContext is Locate under a context: when the context's deadline
// expires (or it is canceled) before the answer is computed, the query fails
// with ErrDeadlineExceeded (respectively the context's error) instead of
// running to completion. The deadline is checked at the stage boundaries of
// the pipeline — on entry, and between the coarse and fine stages — so an
// expired query stops before its most expensive work, not after.
// Config.DefaultQueryDeadline, when set, bounds calls whose context carries
// no deadline of its own.
func (s *System) LocateContext(ctx context.Context, d DeviceID, t time.Time) (Result, error) {
	if dl := s.cfg.DefaultQueryDeadline; dl > 0 {
		if _, ok := ctx.Deadline(); !ok {
			var cancel context.CancelFunc
			ctx, cancel = context.WithTimeout(ctx, dl)
			defer cancel()
		}
	}
	s.queries.Add(1)
	start := time.Now()
	if err := s.ctxErr(ctx); err != nil {
		return Result{}, err
	}
	if s.results == nil {
		res, err := s.locate(ctx, d, t)
		if err == nil {
			s.metrics.cold.observe(time.Since(start))
			s.metrics.neighbors.observe(res.ProcessedNeighbors)
		}
		return res, err
	}
	key := resultKey{device: d, bucket: t.UnixNano() / int64(s.resultBucket)}
	if res, ok := s.results.Get(key); ok {
		s.metrics.cached.observe(time.Since(start))
		return res, nil
	}
	// Capture the epoch before computing: if a write lands while the
	// stages run, PutAt skips the insert, so the stale answer is returned
	// to this caller (it raced the write) but never cached for later ones.
	epoch := s.results.Epoch()
	res, err := s.locate(ctx, d, t)
	if err == nil {
		s.results.PutAt(key, res, epoch)
		s.metrics.cold.observe(time.Since(start))
		s.metrics.neighbors.observe(res.ProcessedNeighbors)
	}
	return res, err
}

// ctxErr maps a context's state to the query-level error: nil while live,
// ErrDeadlineExceeded (counted in QueryStats) on an expired deadline, and
// the context's own error on cancelation.
func (s *System) ctxErr(ctx context.Context) error {
	switch err := ctx.Err(); err {
	case nil:
		return nil
	case context.DeadlineExceeded:
		s.metrics.deadlineExceeded.Add(1)
		return ErrDeadlineExceeded
	default:
		return err
	}
}

// locate runs the two cleaning stages uncached.
func (s *System) locate(ctx context.Context, d DeviceID, t time.Time) (Result, error) {
	cres, err := s.coarse.Locate(d, t)
	if err != nil {
		return Result{}, err
	}
	if cres.Outside {
		return Result{
			Outside:          true,
			CoarseConfidence: cres.Confidence,
			Repaired:         cres.Gap != nil,
		}, nil
	}
	// The fine stage (neighbor discovery + Algorithm 2) dominates query
	// cost; don't start it for a query whose deadline already expired.
	if err := s.ctxErr(ctx); err != nil {
		return Result{}, err
	}
	fres, err := s.fine.Locate(d, cres.Region, t)
	if err != nil {
		return Result{}, err
	}
	if s.graph != nil && len(fres.LocalGraph) > 0 {
		edges := make([]affgraph.Edge, len(fres.LocalGraph))
		for i, e := range fres.LocalGraph {
			edges[i] = affgraph.Edge{From: e.From, To: e.To, Weight: e.Weight}
		}
		s.graph.Merge(edges, t)
	}
	return Result{
		Region:             cres.Region,
		Room:               fres.Room,
		RoomProbability:    fres.Probability,
		CoarseConfidence:   cres.Confidence,
		Repaired:           !cres.FromValidity,
		ProcessedNeighbors: fres.ProcessedNeighbors,
		TotalNeighbors:     fres.TotalNeighbors,
	}, nil
}

// LocateCoarse runs only the coarse stage (building/region granularity).
func (s *System) LocateCoarse(d DeviceID, t time.Time) (outside bool, region RegionID, err error) {
	cres, err := s.coarse.Locate(d, t)
	if err != nil {
		return false, "", err
	}
	return cres.Outside, cres.Region, nil
}

// Building returns the space metadata the system operates on.
func (s *System) Building() *Building { return s.building }

// NumEvents returns the number of ingested connectivity events.
func (s *System) NumEvents() int { return s.store.NumEvents() }

// NumDevices returns the number of distinct ingested devices.
func (s *System) NumDevices() int { return s.store.NumDevices() }

// Devices returns the distinct ingested device IDs in sorted order. A
// sharded deployment uses it to rebuild its device→shard routing table
// after per-shard recovery.
func (s *System) Devices() []DeviceID { return s.store.Devices() }

// NumQueries returns the number of Locate calls served.
func (s *System) NumQueries() int { return int(s.queries.Load()) }

// CacheTierStats reports one cache tier's bound and counters.
type CacheTierStats struct {
	// Size is the current number of resident entries; never exceeds
	// Capacity.
	Size, Capacity int
	// Hits and Misses count lookups.
	Hits, Misses int64
	// Evictions counts LRU removals at capacity; Invalidations counts
	// write-triggered invalidation events (epoch bumps and per-key drops).
	Evictions, Invalidations int64
}

func tierStats(st cache.Stats) CacheTierStats {
	return CacheTierStats{
		Size:          st.Size,
		Capacity:      st.Capacity,
		Hits:          st.Hits,
		Misses:        st.Misses,
		Evictions:     st.Evictions,
		Invalidations: st.Invalidations,
	}
}

// OccupancyIndexStats reports the store's temporal occupancy index: its
// configured bucket width, resident size, and lookup traffic.
type OccupancyIndexStats struct {
	// Enabled reports whether the index is maintained
	// (!Config.DisableOccupancyIndex).
	Enabled bool
	// Bucket is the configured bucket width (Config.OccupancyBucket).
	Bucket time.Duration
	// Buckets is the number of non-empty time buckets; Entries counts
	// distinct (bucket, AP, device) index entries.
	Buckets, Entries int
	// Lookups counts index-served neighbor-discovery lookups;
	// FallbackScans counts lookups answered by the full-scan path because
	// the index is disabled.
	Lookups, FallbackScans int64
}

// SegmentTierStats reports the store's log-structured event layout: sealed
// segment counts, encoded size, and seal/page-in/decode traffic. See
// store.SegmentStats for field documentation.
type SegmentTierStats = store.SegmentStats

// CleanseStats reports the ingest-time cleansing stage's per-rule counters.
// See cleanse.Stats for field documentation.
type CleanseStats = cleanse.Stats

// QuarantineEntry is one cleansing-rejected event with the rule that
// rejected it. See cleanse.Entry.
type QuarantineEntry = cleanse.Entry

// CoarseMaintenanceStats / AffinityMaintenanceStats are the two model
// tiers' write-path maintenance counters (see coarse.MaintenanceStats and
// affgraph.MaintenanceStats).
type (
	CoarseMaintenanceStats   = coarse.MaintenanceStats
	AffinityMaintenanceStats = affgraph.MaintenanceStats
)

// MaintenanceStats reports the write path's model-maintenance picture: what
// keeping the coarse sufficient statistics and the affinity tier current
// costs per ingested batch, and how often the incremental paths fell back
// to full recomputation. `locater-bench -incr` differences these counters
// between the incremental and recompute-on-write arms.
type MaintenanceStats struct {
	Coarse   CoarseMaintenanceStats   `json:"coarse"`
	Affinity AffinityMaintenanceStats `json:"affinity"`
}

// MaintenanceStats snapshots the write-path maintenance counters.
func (s *System) MaintenanceStats() MaintenanceStats {
	ms := MaintenanceStats{Coarse: s.coarse.MaintenanceStats()}
	if s.cached != nil {
		ms.Affinity = s.cached.MaintenanceStats()
	}
	return ms
}

// CleanseStats snapshots the cleansing stage's counters; zero when
// Config.EnableCleansing is off.
func (s *System) CleanseStats() CleanseStats {
	if s.cleanser == nil {
		return CleanseStats{}
	}
	return s.cleanser.Stats()
}

// CleansingEnabled reports whether Config.EnableCleansing is on.
func (s *System) CleansingEnabled() bool { return s.cleanser != nil }

// Quarantine returns the newest quarantined (cleansing-rejected) events,
// newest first, at most limit (limit ≤ 0 returns the whole ring). Empty
// when Config.EnableCleansing is off.
func (s *System) Quarantine(limit int) []QuarantineEntry {
	if s.cleanser == nil {
		return nil
	}
	return s.cleanser.Quarantine(limit)
}

// DeviceGapStats is one device's decayed gap sufficient statistics (see
// coarse.DeviceStats).
type DeviceGapStats = coarse.DeviceStats

// GapStats returns the device's incrementally-maintained gap sufficient
// statistics, rebuilding from the store when the incremental path gave up.
// ok is false for unknown devices.
func (s *System) GapStats(d DeviceID) (DeviceGapStats, bool) {
	return s.coarse.DeviceStatsOf(d)
}

// GapStatsOracle recomputes the device's gap statistics from scratch by
// replaying its stored history — the batch oracle the incremental path is
// property-tested and benchmarked against.
func (s *System) GapStatsOracle(d DeviceID) (DeviceGapStats, bool) {
	return s.coarse.BatchDeviceStats(d)
}

// CacheStats reports every cache tier's state: the global affinity graph's
// edge count, the pairwise-affinity fallback cache, the coarse per-device
// model cache, and the query result cache, plus the store's occupancy
// index and segmented event layout. CoarseModels, Occupancy, and Segments
// are live even when EnableCache is off (the coarse stage always caches
// trained models, and the index and segment tiers are store features);
// Affinity and Results are zero then, and Enabled reports false.
type CacheStats struct {
	// Enabled reports whether the caching engine (Config.EnableCache) is on.
	Enabled bool
	// GraphEdges is the number of distinct edges in the global affinity
	// graph (bounded per edge, not evicted: graph knowledge accumulates).
	GraphEdges int
	// Affinity is the pairwise-affinity fallback cache (graph-served
	// lookups count toward its Hits).
	Affinity CacheTierStats
	// CoarseModels is the coarse stage's per-device trained-model cache.
	CoarseModels CacheTierStats
	// Results is the whole-query result cache.
	Results CacheTierStats
	// Occupancy is the store's temporal occupancy index (neighbor
	// discovery).
	Occupancy OccupancyIndexStats
	// Segments is the store's log-structured event layout: sealed-segment
	// shape plus the decoded-segment cache's traffic.
	Segments SegmentTierStats
	// Cleanse is the ingest-time cleansing stage's per-rule counters; zero
	// when Config.EnableCleansing is off.
	Cleanse CleanseStats
	// Maintenance is the write path's model-maintenance counters (coarse
	// sufficient statistics + affinity scoped validation).
	Maintenance MaintenanceStats
}

// CacheStats reports the caching layer's per-tier sizes, bounds, and
// hit/miss/eviction/invalidation counters.
func (s *System) CacheStats() CacheStats {
	cs := CacheStats{
		CoarseModels: tierStats(s.coarse.ModelCacheStats()),
		Segments:     s.store.SegmentStats(),
		Cleanse:      s.CleanseStats(),
		Maintenance:  s.MaintenanceStats(),
	}
	occ := s.store.OccupancyStats()
	cs.Occupancy = OccupancyIndexStats{
		Enabled:       occ.Enabled,
		Bucket:        occ.Bucket,
		Buckets:       occ.Buckets,
		Entries:       occ.Entries,
		Lookups:       occ.Lookups,
		FallbackScans: occ.FallbackScans,
	}
	if s.graph != nil {
		cs.Enabled = true
		cs.GraphEdges = s.graph.NumEdges()
		cs.Affinity = tierStats(s.cached.Stats())
	}
	if s.results != nil {
		cs.Results = tierStats(s.results.Stats())
	}
	return cs
}

// InvalidateSegmentCache drops the store's decoded-segment cache in O(1)
// (epoch bump). The encoded payloads in the segment backend stay
// authoritative and are paged back in on demand, so this only releases the
// decoded working set — an operational control for memory pressure, and the
// cold-query arm of the memory benchmarks.
func (s *System) InvalidateSegmentCache() { s.store.InvalidateSegmentCache() }

// Query is one localization request Q = (device, t) for LocateBatch.
type Query struct {
	Device DeviceID
	Time   time.Time
}

// BatchResult pairs a batch query with its answer. Err is per-query: one
// failing query does not abort the rest of the batch.
type BatchResult struct {
	Query  Query
	Result Result
	Err    error
}

// LocateBatch answers many queries concurrently on a bounded worker pool
// and returns the results in input order. workers bounds the number of
// goroutines; values < 1 default to GOMAXPROCS, and the pool never exceeds
// len(queries). Workers pull queries from a shared index, so a handful of
// slow queries (cold models that need training) do not stall the rest of
// the batch behind a fixed partition.
//
// Throughput scales with cores because Locate takes no system-wide lock:
// queries wait on each other only at the contention points listed in the
// System documentation (same-shard training, the store's shared lock, and
// the cache's graph-merge write lock).
func (s *System) LocateBatch(queries []Query, workers int) []BatchResult {
	return s.LocateBatchContext(context.Background(), queries, workers)
}

// LocateBatchContext is LocateBatch under a context: once the context's
// deadline expires, queries not yet started fail fast with
// ErrDeadlineExceeded instead of executing — the batch drains immediately
// rather than grinding through dead work. Queries already in flight finish
// at their next stage boundary (see LocateContext).
func (s *System) LocateBatchContext(ctx context.Context, queries []Query, workers int) []BatchResult {
	out := make([]BatchResult, len(queries))
	if len(queries) == 0 {
		return out
	}
	if workers < 1 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(queries) {
		workers = len(queries)
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(queries) {
					return
				}
				q := queries[i]
				if err := s.ctxErr(ctx); err != nil {
					out[i] = BatchResult{Query: q, Err: err}
					continue
				}
				res, err := s.LocateContext(ctx, q.Device, q.Time)
				out[i] = BatchResult{Query: q, Result: res, Err: err}
			}
		}()
	}
	wg.Wait()
	return out
}
