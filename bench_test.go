// Benchmarks regenerating every table and figure of the paper's evaluation
// (Section 6). Each benchmark runs the corresponding experiment driver on a
// reduced workload; `go test -bench . -benchmem` prints the measured tables
// via b.Log at -v, and cmd/locater-bench prints them at full scale.
//
// One benchmark per paper artifact:
//
//	BenchmarkFig7Thresholds        — Fig. 7, coarse precision vs τl/τh
//	BenchmarkTable2Weights         — Table 2, Pf vs weight combinations
//	BenchmarkFig8History           — Fig. 8, precision vs weeks of history
//	BenchmarkFig9CachingPrecision  — Fig. 9, precision with/without cache
//	BenchmarkTable3Groups          — Table 3, per-group precision vs baselines
//	BenchmarkTable4Scenarios       — Table 4, four simulated scenarios
//	BenchmarkFig10Efficiency       — Fig. 10, latency vs #queries
//	BenchmarkFig11StopConditions   — Fig. 11, stop conditions on/off
//	BenchmarkFig12Caching          — Fig. 12, caching on/off latency
//
// plus ablation benchmarks for the design knobs called out in DESIGN.md and
// micro-benchmarks of the hot query paths.
package locater_test

import (
	"runtime"
	"strconv"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"locater"
	"locater/internal/eval"
	"locater/internal/experiments"
)

// benchParams is the reduced workload used by the benchmark harness.
var benchParams = experiments.Params{
	PerClass: 3,
	Days:     21,
	Queries:  120,
	Seed:     1,
	Fast:     true,
}

// runDriver executes one experiment driver per iteration and logs the
// resulting tables once.
func runDriver(b *testing.B, name string) {
	b.Helper()
	d, ok := experiments.Find(name)
	if !ok {
		b.Fatalf("unknown experiment %s", name)
	}
	var logged bool
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tables, err := d.Run(benchParams)
		if err != nil {
			b.Fatal(err)
		}
		if !logged {
			logged = true
			var sb strings.Builder
			for _, t := range tables {
				t.Fprint(&sb)
			}
			b.Log("\n" + sb.String())
		}
	}
}

func BenchmarkFig7Thresholds(b *testing.B)       { runDriver(b, "fig7") }
func BenchmarkTable2Weights(b *testing.B)        { runDriver(b, "table2") }
func BenchmarkFig8History(b *testing.B)          { runDriver(b, "fig8") }
func BenchmarkFig9CachingPrecision(b *testing.B) { runDriver(b, "fig9") }
func BenchmarkTable3Groups(b *testing.B)         { runDriver(b, "table3") }
func BenchmarkTable4Scenarios(b *testing.B)      { runDriver(b, "table4") }
func BenchmarkFig10Efficiency(b *testing.B)      { runDriver(b, "fig10") }
func BenchmarkFig11StopConditions(b *testing.B)  { runDriver(b, "fig11") }
func BenchmarkFig12Caching(b *testing.B)         { runDriver(b, "fig12") }

// --- ablation benchmarks (DESIGN.md design decisions) ---------------------

// BenchmarkAblationPromotion measures Algorithm 1's self-training cost as a
// function of the per-round promotion batch size (1 = verbatim Algorithm 1).
func BenchmarkAblationPromotion(b *testing.B) {
	ds, err := experiments.BuildDBH(benchParams)
	if err != nil {
		b.Fatal(err)
	}
	for _, k := range []int{1, 4, 16} {
		b.Run(map[int]string{1: "verbatim", 4: "batch4", 16: "batch16"}[k], func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				sys, err := locater.New(locater.Config{
					Building:           ds.Building,
					HistoryDays:        14,
					PromotionsPerRound: k,
					MaxTrainingGaps:    100,
				})
				if err != nil {
					b.Fatal(err)
				}
				if err := sys.Ingest(ds.Events); err != nil {
					b.Fatal(err)
				}
				sys.EstimateDeltas(0.9, 2*time.Minute, 15*time.Minute)
				// Force one model training via a gap query.
				tq := ds.Config.Start.AddDate(0, 0, 18).Add(12 * time.Hour)
				if _, err := sys.Locate(ds.People[0].Device, tq); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationSigma measures query latency and neighbor-processing
// effort under different Gaussian kernel widths in the caching engine.
func BenchmarkAblationSigma(b *testing.B) {
	ds, err := experiments.BuildDBH(benchParams)
	if err != nil {
		b.Fatal(err)
	}
	queries, err := experiments.SampleDefaultQueries(ds, benchParams, nil)
	if err != nil {
		b.Fatal(err)
	}
	for _, sigma := range []time.Duration{15 * time.Minute, time.Hour, 6 * time.Hour} {
		b.Run(sigma.String(), func(b *testing.B) {
			sys, err := locater.New(locater.Config{
				Building:           ds.Building,
				Variant:            locater.DependentVariant,
				EnableCache:        true,
				CacheSigma:         sigma,
				HistoryDays:        14,
				PromotionsPerRound: 8,
				MaxTrainingGaps:    100,
			})
			if err != nil {
				b.Fatal(err)
			}
			if err := sys.Ingest(ds.Events); err != nil {
				b.Fatal(err)
			}
			sys.EstimateDeltas(0.9, 2*time.Minute, 15*time.Minute)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				q := queries[i%len(queries)]
				if _, err := sys.Locate(q.Device, q.Time); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- micro-benchmarks of the hot paths -------------------------------------

// BenchmarkLocateWarm measures steady-state per-query latency of both
// variants with a warm cache (the converged regime of Fig. 10). It shares
// experiments.WarmedSystem with BenchmarkLocateParallel so the serial and
// parallel numbers compare identically configured systems.
func BenchmarkLocateWarm(b *testing.B) {
	for _, v := range []struct {
		name    string
		variant locater.Variant
	}{
		{"I-LOCATER", locater.IndependentVariant},
		{"D-LOCATER", locater.DependentVariant},
	} {
		b.Run(v.name, func(b *testing.B) {
			sys, batch := warmedSystem(b, v.variant)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				q := batch[i%len(batch)]
				if _, err := sys.Locate(q.Device, q.Time); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// warmedSystem builds, ingests, and warms a system over the benchmark
// workload so the measured region compares steady-state querying.
func warmedSystem(b *testing.B, variant locater.Variant) (*locater.System, []locater.Query) {
	b.Helper()
	sys, batch, err := experiments.WarmedSystem(benchParams, variant)
	if err != nil {
		b.Fatal(err)
	}
	return sys, batch
}

// BenchmarkLocateParallel measures concurrent Locate throughput on the
// sharded engine via b.RunParallel: with GOMAXPROCS > 1 the reported ns/op
// should drop well below BenchmarkLocateWarm's serial per-query latency,
// since queries for unrelated devices share no lock. Compare
//
//	go test -bench 'LocateWarm|LocateParallel' -cpu 1,2,4,8 .
//
// to see the scaling (the acceptance gate for the concurrent engine is
// ≥ 2× single-worker throughput on a multi-core runner).
func BenchmarkLocateParallel(b *testing.B) {
	sys, batch := warmedSystem(b, locater.DependentVariant)
	var next atomic.Int64
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			i := int(next.Add(1)-1) % len(batch)
			q := batch[i]
			if _, err := sys.Locate(q.Device, q.Time); err != nil {
				b.Error(err)
				return
			}
		}
	})
}

// BenchmarkLocateBatch measures LocateBatch end to end (one op = the whole
// batch) at a worker pool matching GOMAXPROCS versus a single worker — the
// serialized baseline the global-mutex engine was limited to.
func BenchmarkLocateBatch(b *testing.B) {
	sys, batch := warmedSystem(b, locater.DependentVariant)
	for _, bc := range []struct {
		name    string
		workers int
	}{
		{"serial", 1},
		{"gomaxprocs", runtime.GOMAXPROCS(0)},
	} {
		b.Run(bc.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				results := sys.LocateBatch(batch, bc.workers)
				for _, r := range results {
					if r.Err != nil {
						b.Fatal(r.Err)
					}
				}
			}
		})
	}
}

// BenchmarkIngest measures bulk ingestion throughput.
func BenchmarkIngest(b *testing.B) {
	ds, err := experiments.BuildDBH(benchParams)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sys, err := locater.New(locater.Config{Building: ds.Building})
		if err != nil {
			b.Fatal(err)
		}
		if err := sys.Ingest(ds.Events); err != nil {
			b.Fatal(err)
		}
	}
	b.SetBytes(int64(len(ds.Events)))
}

// BenchmarkScorePrecision measures the evaluation harness itself.
func BenchmarkScorePrecision(b *testing.B) {
	ds, err := experiments.BuildDBH(benchParams)
	if err != nil {
		b.Fatal(err)
	}
	queries, err := experiments.SampleDefaultQueries(ds, benchParams, nil)
	if err != nil {
		b.Fatal(err)
	}
	sys := eval.SystemFunc(func(q eval.Query) (eval.Answer, error) {
		return eval.Answer{Outside: q.Truth.Outside, Room: q.Truth.Room}, nil
	})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eval.Score(ds.Building, sys, queries)
	}
}

// BenchmarkLocateRepeatedQueries measures the result cache's repeated-query
// speedup: the same warmed workload replayed with the result cache on
// (default) versus disabled (ResultCacheSize = -1). Repeats within a time
// bucket skip both cleaning stages on the cached run, so its ns/op should
// sit orders of magnitude below the uncached run's.
func BenchmarkLocateRepeatedQueries(b *testing.B) {
	for _, bc := range []struct {
		name    string
		disable bool
	}{
		{"result-cache", false},
		{"uncached", true},
	} {
		b.Run(bc.name, func(b *testing.B) {
			sys, batch, err := experiments.WarmedSystemOpts(benchParams, locater.DependentVariant,
				func(c *locater.Config) {
					if bc.disable {
						c.ResultCacheSize = -1
					}
				})
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				q := batch[i%len(batch)]
				if _, err := sys.Locate(q.Device, q.Time); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			if !bc.disable {
				st := sys.CacheStats().Results
				if st.Size > st.Capacity {
					b.Fatalf("result cache size %d exceeds capacity %d", st.Size, st.Capacity)
				}
				b.ReportMetric(float64(st.Hits), "result-hits")
			}
		})
	}
}

// BenchmarkCachesUnderChurn interleaves streaming ingest (ever-new devices,
// a 24h-style churn) with queries and asserts every cache tier stays within
// its bound for the whole run — the bounded-memory property the ad-hoc maps
// lacked. Allocation figures (-benchmem) show the steady state.
func BenchmarkCachesUnderChurn(b *testing.B) {
	sys, batch, err := experiments.WarmedSystemOpts(benchParams, locater.IndependentVariant,
		func(c *locater.Config) {
			c.AffinityCacheSize = 256
			c.ResultCacheSize = 256
			c.ModelCacheSize = 64
		})
	if err != nil {
		b.Fatal(err)
	}
	aps := sys.Building().AccessPoints()
	base := batch[0].Time
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dev := locater.DeviceID("churn-" + strconv.Itoa(i))
		t := base.Add(time.Duration(i%1440) * time.Minute)
		if err := sys.IngestOne(locater.Event{Device: dev, Time: t, AP: aps[i%len(aps)]}); err != nil {
			b.Fatal(err)
		}
		q := batch[i%len(batch)]
		if _, err := sys.Locate(q.Device, q.Time); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	cs := sys.CacheStats()
	for name, tier := range map[string]locater.CacheTierStats{
		"affinity": cs.Affinity, "coarse": cs.CoarseModels, "results": cs.Results,
	} {
		if tier.Size > tier.Capacity {
			b.Fatalf("%s cache size %d exceeds capacity %d", name, tier.Size, tier.Capacity)
		}
	}
	b.ReportMetric(float64(cs.Affinity.Size+cs.CoarseModels.Size+cs.Results.Size), "resident-entries")
}
