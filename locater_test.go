package locater_test

import (
	"fmt"
	"testing"
	"time"

	"locater"
	"locater/internal/eval"
	"locater/internal/sim"
)

var simStart = time.Date(2026, 1, 5, 0, 0, 0, 0, time.UTC)

// buildDataset generates a small deterministic workload shared by the
// integration tests.
func buildDataset(t testing.TB, days int) *sim.Dataset {
	t.Helper()
	sc, err := sim.DBH(3)
	if err != nil {
		t.Fatal(err)
	}
	ds, err := sim.Generate(sc.Config(simStart, days, 77))
	if err != nil {
		t.Fatal(err)
	}
	return ds
}

func newSystem(t testing.TB, ds *sim.Dataset, cfg locater.Config) *locater.System {
	t.Helper()
	cfg.Building = ds.Building
	cfg.HistoryDays = 14
	cfg.PromotionsPerRound = 8
	cfg.MaxTrainingGaps = 100
	sys, err := locater.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.Ingest(ds.Events); err != nil {
		t.Fatal(err)
	}
	sys.EstimateDeltas(0.9, 2*time.Minute, 15*time.Minute)
	return sys
}

func TestNewValidation(t *testing.T) {
	if _, err := locater.New(locater.Config{}); err == nil {
		t.Error("missing building should fail")
	}
	ds := buildDataset(t, 2)
	bad := locater.Config{
		Building: ds.Building,
		Weights:  locater.Weights{Preferred: 0.2, Public: 0.5, Private: 0.3},
	}
	if _, err := locater.New(bad); err == nil {
		t.Error("invalid weights should fail")
	}
}

func TestEndToEndQueries(t *testing.T) {
	ds := buildDataset(t, 14)
	sys := newSystem(t, ds, locater.Config{Variant: locater.DependentVariant, EnableCache: true})

	if sys.NumEvents() != len(ds.Events) {
		t.Errorf("ingested %d of %d events", sys.NumEvents(), len(ds.Events))
	}
	if sys.NumDevices() != len(ds.People) {
		t.Errorf("devices = %d, want %d", sys.NumDevices(), len(ds.People))
	}

	queries, err := eval.SampleQueries(ds, eval.WorkloadOptions{
		NumQueries: 60, Seed: 5,
		From: simStart.AddDate(0, 0, 10), To: simStart.AddDate(0, 0, 14),
		DaytimeOnly: true, InsideBias: 0.5,
	})
	if err != nil {
		t.Fatal(err)
	}
	answered := 0
	for _, q := range queries {
		res, err := sys.Locate(q.Device, q.Time)
		if err != nil {
			t.Fatalf("Locate(%s, %v): %v", q.Device, q.Time, err)
		}
		if !res.Outside {
			if res.Room == "" || res.Region == "" {
				t.Fatalf("inside answer missing room/region: %+v", res)
			}
			// Room must be a candidate of the region.
			found := false
			for _, r := range ds.Building.CandidateRooms(res.Region) {
				if r == res.Room {
					found = true
					break
				}
			}
			if !found {
				t.Fatalf("room %s not in region %s", res.Room, res.Region)
			}
			if res.RoomProbability < 0 || res.RoomProbability > 1 {
				t.Fatalf("room probability out of range: %v", res.RoomProbability)
			}
		}
		answered++
	}
	if sys.NumQueries() != answered {
		t.Errorf("NumQueries = %d, want %d", sys.NumQueries(), answered)
	}
}

func TestPrecisionBeatsRandomBaseline(t *testing.T) {
	ds := buildDataset(t, 14)
	sys := newSystem(t, ds, locater.Config{})
	queries, err := eval.SampleQueries(ds, eval.WorkloadOptions{
		NumQueries: 120, Seed: 6,
		From: simStart.AddDate(0, 0, 10), To: simStart.AddDate(0, 0, 14),
		DaytimeOnly: true, InsideBias: 0.6,
	})
	if err != nil {
		t.Fatal(err)
	}
	wrapped := eval.SystemFunc(func(q eval.Query) (eval.Answer, error) {
		r, err := sys.Locate(q.Device, q.Time)
		if err != nil {
			return eval.Answer{}, err
		}
		return eval.Answer{Outside: r.Outside, Region: r.Region, Room: r.Room}, nil
	})
	p := eval.Score(ds.Building, wrapped, queries)
	if p.Errors > 0 {
		t.Fatalf("%d query errors", p.Errors)
	}
	// Uniform random room choice in an 11-room region yields ≈9% fine
	// precision; LOCATER must do far better.
	if p.Pf() < 0.3 {
		t.Errorf("fine precision %.2f suspiciously low", p.Pf())
	}
	if p.Pc() < 0.5 {
		t.Errorf("coarse precision %.2f suspiciously low", p.Pc())
	}
}

func TestLocateCoarse(t *testing.T) {
	ds := buildDataset(t, 7)
	sys := newSystem(t, ds, locater.Config{})
	// Night query: outside.
	outside, _, err := sys.LocateCoarse(ds.People[0].Device, simStart.AddDate(0, 0, 5).Add(3*time.Hour))
	if err != nil {
		t.Fatal(err)
	}
	if !outside {
		t.Error("3am should be outside")
	}
}

func TestCacheStats(t *testing.T) {
	ds := buildDataset(t, 7)
	noCache := newSystem(t, ds, locater.Config{})
	cs := noCache.CacheStats()
	if cs.Enabled || cs.GraphEdges != 0 || cs.Affinity != (locater.CacheTierStats{}) || cs.Results != (locater.CacheTierStats{}) {
		t.Errorf("no-cache stats = %+v", cs)
	}
	// The coarse model cache exists regardless of EnableCache.
	if cs.CoarseModels.Capacity == 0 {
		t.Error("coarse model cache reports no capacity")
	}
	cached := newSystem(t, ds, locater.Config{EnableCache: true, Variant: locater.DependentVariant})
	tq := simStart.AddDate(0, 0, 5).Add(11 * time.Hour)
	for _, p := range ds.People[:4] {
		if _, err := cached.Locate(p.Device, tq); err != nil {
			t.Fatal(err)
		}
	}
	cs = cached.CacheStats()
	if !cs.Enabled {
		t.Error("Enabled = false with EnableCache")
	}
	if cs.Affinity.Hits+cs.Affinity.Misses == 0 {
		t.Error("affinity cache never consulted during inside queries")
	}
	if cs.Results.Misses == 0 {
		t.Error("result cache never consulted")
	}
	for name, tier := range map[string]locater.CacheTierStats{
		"affinity": cs.Affinity, "coarse": cs.CoarseModels, "results": cs.Results,
	} {
		if tier.Size > tier.Capacity {
			t.Errorf("%s cache size %d exceeds capacity %d", name, tier.Size, tier.Capacity)
		}
	}
}

// TestResultCacheRepeatedQuery: with EnableCache a repeated (device, time)
// query is served from the result cache — and returns the identical answer.
func TestResultCacheRepeatedQuery(t *testing.T) {
	ds := buildDataset(t, 7)
	sys := newSystem(t, ds, locater.Config{EnableCache: true})
	dev := ds.People[0].Device
	tq := simStart.AddDate(0, 0, 5).Add(11 * time.Hour)

	first, err := sys.Locate(dev, tq)
	if err != nil {
		t.Fatal(err)
	}
	again, err := sys.Locate(dev, tq)
	if err != nil {
		t.Fatal(err)
	}
	if again != first {
		t.Errorf("cached answer differs: %+v vs %+v", again, first)
	}
	if hits := sys.CacheStats().Results.Hits; hits == 0 {
		t.Error("repeat query did not hit the result cache")
	}
}

// TestLocateAfterIngestNotStale is the stale-affinity regression test: with
// every cache enabled, events ingested after a warm-up query must be
// reflected by the very next query — the cached result and cached pairwise
// affinities may not outlive the write.
//
// Construction: device "probe" has history only on apA. A query inside its
// silent stretch warms every cache (coarse model, affinities, result).
// Then a dense burst of post-warm-up events on apB, covering the original
// query time, is ingested: the same (device, time) query must now see a
// validity hit on apB's region — any other answer means some cache kept
// serving pre-ingest state.
func TestLocateAfterIngestNotStale(t *testing.T) {
	ds := buildDataset(t, 7)
	sys := newSystem(t, ds, locater.Config{
		EnableCache: true,
		Variant:     locater.DependentVariant,
	})
	b := ds.Building
	aps := b.AccessPoints()
	if len(aps) < 2 {
		t.Fatal("need two APs")
	}
	apA, apB := aps[0], aps[1]
	dev := locater.DeviceID("probe-dev")
	tq := simStart.AddDate(0, 0, 5).Add(11 * time.Hour)

	// History on apA with a gap around tq (events end an hour before).
	var hist []locater.Event
	for d := 0; d < 5; d++ {
		base := simStart.AddDate(0, 0, d)
		for m := 0; m < 120; m += 10 {
			hist = append(hist, locater.Event{Device: dev, Time: base.Add(9*time.Hour + time.Duration(m)*time.Minute), AP: apA})
		}
	}
	if err := sys.Ingest(hist); err != nil {
		t.Fatal(err)
	}

	// Warm every cache with the pre-ingest answer.
	warm, err := sys.Locate(dev, tq)
	if err != nil {
		t.Fatal(err)
	}

	// The write: the device shows up on apB right around tq.
	var burst []locater.Event
	for m := -30; m <= 30; m += 5 {
		burst = append(burst, locater.Event{Device: dev, Time: tq.Add(time.Duration(m) * time.Minute), AP: apB})
	}
	if err := sys.Ingest(burst); err != nil {
		t.Fatal(err)
	}

	// The very next query must see the new events: tq is now inside a
	// validity interval on apB, a non-repaired inside answer.
	got, err := sys.Locate(dev, tq)
	if err != nil {
		t.Fatal(err)
	}
	regionB, ok := b.RegionOf(apB)
	if !ok {
		t.Fatal("apB has no region")
	}
	if got.Outside || got.Region != regionB || got.Repaired {
		t.Errorf("post-ingest answer %+v does not reflect the ingested burst (want region %s validity hit; pre-ingest answer was %+v)",
			got, regionB, warm)
	}
}

// TestCachesBoundedUnderChurn replays a 24h churn workload — streaming
// ingest of ever-new devices interleaved with queries — and asserts every
// cache tier stays within its configured bound (the pre-fix affinity cache
// grew one entry per device pair per time bucket, forever).
func TestCachesBoundedUnderChurn(t *testing.T) {
	ds := buildDataset(t, 7)
	sys := newSystem(t, ds, locater.Config{
		EnableCache:       true,
		AffinityCacheSize: 64,
		ResultCacheSize:   64,
		ModelCacheSize:    32,
	})
	aps := ds.Building.AccessPoints()
	day := simStart.AddDate(0, 0, 7)
	for hour := 0; hour < 24; hour++ {
		base := day.Add(time.Duration(hour) * time.Hour)
		dev := locater.DeviceID(fmt.Sprintf("churn-%d", hour))
		for m := 0; m < 60; m += 10 {
			if err := sys.IngestOne(locater.Event{Device: dev, Time: base.Add(time.Duration(m) * time.Minute), AP: aps[hour%len(aps)]}); err != nil {
				t.Fatal(err)
			}
		}
		// Queries for the churning device and a stable one.
		if _, err := sys.Locate(dev, base.Add(35*time.Minute)); err != nil {
			t.Fatal(err)
		}
		if _, err := sys.Locate(ds.People[0].Device, base.Add(40*time.Minute)); err != nil {
			t.Fatal(err)
		}
		cs := sys.CacheStats()
		for name, tier := range map[string]locater.CacheTierStats{
			"affinity": cs.Affinity, "coarse": cs.CoarseModels, "results": cs.Results,
		} {
			if tier.Size > tier.Capacity {
				t.Fatalf("hour %d: %s cache size %d exceeds capacity %d", hour, name, tier.Size, tier.Capacity)
			}
		}
	}
	cs := sys.CacheStats()
	if cs.Affinity.Invalidations == 0 || cs.Results.Invalidations == 0 {
		t.Errorf("churn produced no invalidations: %+v", cs)
	}
}

func TestStreamingIngest(t *testing.T) {
	ds := buildDataset(t, 7)
	cfg := locater.Config{Building: ds.Building, HistoryDays: 7, PromotionsPerRound: 8}
	sys, err := locater.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range ds.Events[:500] {
		if err := sys.IngestOne(e); err != nil {
			t.Fatal(err)
		}
	}
	if sys.NumEvents() != 500 {
		t.Errorf("streamed %d events", sys.NumEvents())
	}
	// Queries still answerable mid-stream.
	if _, err := sys.Locate(ds.Events[0].Device, ds.Events[0].Time); err != nil {
		t.Fatal(err)
	}
}

func TestSetDeltaAndDefaults(t *testing.T) {
	ds := buildDataset(t, 2)
	sys, err := locater.New(locater.Config{Building: ds.Building, DefaultDelta: 5 * time.Minute})
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.SetDelta(ds.People[0].Device, 3*time.Minute); err != nil {
		t.Fatal(err)
	}
	if err := sys.SetDelta(ds.People[0].Device, 0); err == nil {
		t.Error("zero delta should fail")
	}
	if got := locater.DefaultWeights(); got != (locater.Weights{Preferred: 0.6, Public: 0.3, Private: 0.1}) {
		t.Errorf("DefaultWeights = %+v", got)
	}
}

func TestVariantsAgreeOnStrongPrior(t *testing.T) {
	// For a device with no neighbors both variants must return the prior's
	// argmax (the preferred room), so they agree.
	ds := buildDataset(t, 7)
	i := newSystem(t, ds, locater.Config{Variant: locater.IndependentVariant})
	d := newSystem(t, ds, locater.Config{Variant: locater.DependentVariant})

	dev := ds.People[0].Device
	// Find a query time where the device is inside per the oracle.
	wins := ds.Truth.InsideWindows(dev, simStart.AddDate(0, 0, 5), simStart.AddDate(0, 0, 7))
	if len(wins) == 0 {
		t.Skip("no inside windows")
	}
	tq := wins[0].Start.Add(wins[0].End.Sub(wins[0].Start) / 2)
	ri, err := i.Locate(dev, tq)
	if err != nil {
		t.Fatal(err)
	}
	rd, err := d.Locate(dev, tq)
	if err != nil {
		t.Fatal(err)
	}
	if ri.Outside != rd.Outside {
		t.Errorf("variants disagree on outside: %v vs %v", ri.Outside, rd.Outside)
	}
	if !ri.Outside && ri.Region != rd.Region {
		t.Errorf("variants disagree on region: %v vs %v", ri.Region, rd.Region)
	}
}
