package locater_test

import (
	"testing"
	"time"

	"locater"
	"locater/internal/eval"
	"locater/internal/sim"
)

var simStart = time.Date(2026, 1, 5, 0, 0, 0, 0, time.UTC)

// buildDataset generates a small deterministic workload shared by the
// integration tests.
func buildDataset(t testing.TB, days int) *sim.Dataset {
	t.Helper()
	sc, err := sim.DBH(3)
	if err != nil {
		t.Fatal(err)
	}
	ds, err := sim.Generate(sc.Config(simStart, days, 77))
	if err != nil {
		t.Fatal(err)
	}
	return ds
}

func newSystem(t testing.TB, ds *sim.Dataset, cfg locater.Config) *locater.System {
	t.Helper()
	cfg.Building = ds.Building
	cfg.HistoryDays = 14
	cfg.PromotionsPerRound = 8
	cfg.MaxTrainingGaps = 100
	sys, err := locater.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.Ingest(ds.Events); err != nil {
		t.Fatal(err)
	}
	sys.EstimateDeltas(0.9, 2*time.Minute, 15*time.Minute)
	return sys
}

func TestNewValidation(t *testing.T) {
	if _, err := locater.New(locater.Config{}); err == nil {
		t.Error("missing building should fail")
	}
	ds := buildDataset(t, 2)
	bad := locater.Config{
		Building: ds.Building,
		Weights:  locater.Weights{Preferred: 0.2, Public: 0.5, Private: 0.3},
	}
	if _, err := locater.New(bad); err == nil {
		t.Error("invalid weights should fail")
	}
}

func TestEndToEndQueries(t *testing.T) {
	ds := buildDataset(t, 14)
	sys := newSystem(t, ds, locater.Config{Variant: locater.DependentVariant, EnableCache: true})

	if sys.NumEvents() != len(ds.Events) {
		t.Errorf("ingested %d of %d events", sys.NumEvents(), len(ds.Events))
	}
	if sys.NumDevices() != len(ds.People) {
		t.Errorf("devices = %d, want %d", sys.NumDevices(), len(ds.People))
	}

	queries, err := eval.SampleQueries(ds, eval.WorkloadOptions{
		NumQueries: 60, Seed: 5,
		From: simStart.AddDate(0, 0, 10), To: simStart.AddDate(0, 0, 14),
		DaytimeOnly: true, InsideBias: 0.5,
	})
	if err != nil {
		t.Fatal(err)
	}
	answered := 0
	for _, q := range queries {
		res, err := sys.Locate(q.Device, q.Time)
		if err != nil {
			t.Fatalf("Locate(%s, %v): %v", q.Device, q.Time, err)
		}
		if !res.Outside {
			if res.Room == "" || res.Region == "" {
				t.Fatalf("inside answer missing room/region: %+v", res)
			}
			// Room must be a candidate of the region.
			found := false
			for _, r := range ds.Building.CandidateRooms(res.Region) {
				if r == res.Room {
					found = true
					break
				}
			}
			if !found {
				t.Fatalf("room %s not in region %s", res.Room, res.Region)
			}
			if res.RoomProbability < 0 || res.RoomProbability > 1 {
				t.Fatalf("room probability out of range: %v", res.RoomProbability)
			}
		}
		answered++
	}
	if sys.NumQueries() != answered {
		t.Errorf("NumQueries = %d, want %d", sys.NumQueries(), answered)
	}
}

func TestPrecisionBeatsRandomBaseline(t *testing.T) {
	ds := buildDataset(t, 14)
	sys := newSystem(t, ds, locater.Config{})
	queries, err := eval.SampleQueries(ds, eval.WorkloadOptions{
		NumQueries: 120, Seed: 6,
		From: simStart.AddDate(0, 0, 10), To: simStart.AddDate(0, 0, 14),
		DaytimeOnly: true, InsideBias: 0.6,
	})
	if err != nil {
		t.Fatal(err)
	}
	wrapped := eval.SystemFunc(func(q eval.Query) (eval.Answer, error) {
		r, err := sys.Locate(q.Device, q.Time)
		if err != nil {
			return eval.Answer{}, err
		}
		return eval.Answer{Outside: r.Outside, Region: r.Region, Room: r.Room}, nil
	})
	p := eval.Score(ds.Building, wrapped, queries)
	if p.Errors > 0 {
		t.Fatalf("%d query errors", p.Errors)
	}
	// Uniform random room choice in an 11-room region yields ≈9% fine
	// precision; LOCATER must do far better.
	if p.Pf() < 0.3 {
		t.Errorf("fine precision %.2f suspiciously low", p.Pf())
	}
	if p.Pc() < 0.5 {
		t.Errorf("coarse precision %.2f suspiciously low", p.Pc())
	}
}

func TestLocateCoarse(t *testing.T) {
	ds := buildDataset(t, 7)
	sys := newSystem(t, ds, locater.Config{})
	// Night query: outside.
	outside, _, err := sys.LocateCoarse(ds.People[0].Device, simStart.AddDate(0, 0, 5).Add(3*time.Hour))
	if err != nil {
		t.Fatal(err)
	}
	if !outside {
		t.Error("3am should be outside")
	}
}

func TestCacheStats(t *testing.T) {
	ds := buildDataset(t, 7)
	noCache := newSystem(t, ds, locater.Config{})
	if e, h, m := noCache.CacheStats(); e != 0 || h != 0 || m != 0 {
		t.Errorf("no-cache stats = %d %d %d", e, h, m)
	}
	cached := newSystem(t, ds, locater.Config{EnableCache: true, Variant: locater.DependentVariant})
	tq := simStart.AddDate(0, 0, 5).Add(11 * time.Hour)
	for _, p := range ds.People[:4] {
		if _, err := cached.Locate(p.Device, tq); err != nil {
			t.Fatal(err)
		}
	}
	_, hits, misses := cached.CacheStats()
	if hits+misses == 0 {
		t.Error("cache never consulted during inside queries")
	}
}

func TestStreamingIngest(t *testing.T) {
	ds := buildDataset(t, 7)
	cfg := locater.Config{Building: ds.Building, HistoryDays: 7, PromotionsPerRound: 8}
	sys, err := locater.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range ds.Events[:500] {
		if err := sys.IngestOne(e); err != nil {
			t.Fatal(err)
		}
	}
	if sys.NumEvents() != 500 {
		t.Errorf("streamed %d events", sys.NumEvents())
	}
	// Queries still answerable mid-stream.
	if _, err := sys.Locate(ds.Events[0].Device, ds.Events[0].Time); err != nil {
		t.Fatal(err)
	}
}

func TestSetDeltaAndDefaults(t *testing.T) {
	ds := buildDataset(t, 2)
	sys, err := locater.New(locater.Config{Building: ds.Building, DefaultDelta: 5 * time.Minute})
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.SetDelta(ds.People[0].Device, 3*time.Minute); err != nil {
		t.Fatal(err)
	}
	if err := sys.SetDelta(ds.People[0].Device, 0); err == nil {
		t.Error("zero delta should fail")
	}
	if got := locater.DefaultWeights(); got != (locater.Weights{Preferred: 0.6, Public: 0.3, Private: 0.1}) {
		t.Errorf("DefaultWeights = %+v", got)
	}
}

func TestVariantsAgreeOnStrongPrior(t *testing.T) {
	// For a device with no neighbors both variants must return the prior's
	// argmax (the preferred room), so they agree.
	ds := buildDataset(t, 7)
	i := newSystem(t, ds, locater.Config{Variant: locater.IndependentVariant})
	d := newSystem(t, ds, locater.Config{Variant: locater.DependentVariant})

	dev := ds.People[0].Device
	// Find a query time where the device is inside per the oracle.
	wins := ds.Truth.InsideWindows(dev, simStart.AddDate(0, 0, 5), simStart.AddDate(0, 0, 7))
	if len(wins) == 0 {
		t.Skip("no inside windows")
	}
	tq := wins[0].Start.Add(wins[0].End.Sub(wins[0].Start) / 2)
	ri, err := i.Locate(dev, tq)
	if err != nil {
		t.Fatal(err)
	}
	rd, err := d.Locate(dev, tq)
	if err != nil {
		t.Fatal(err)
	}
	if ri.Outside != rd.Outside {
		t.Errorf("variants disagree on outside: %v vs %v", ri.Outside, rd.Outside)
	}
	if !ri.Outside && ri.Region != rd.Region {
		t.Errorf("variants disagree on region: %v vs %v", ri.Region, rd.Region)
	}
}
